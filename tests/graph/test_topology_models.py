"""Tests for the non-UDG topology generator suite and its registry."""

import math

import numpy as np
import pytest

from repro.graph.generators import Topology
from repro.graph.models import (
    TopologySpec,
    accepted_parameters,
    as_topology_spec,
    build_topology_spec,
    degree_parameters,
    distance_rule_topology,
    erdos_renyi_topology,
    fixed_degree_topology,
    gaussian_degree_topology,
    is_geometric,
    nw_small_world_topology,
    register_topology,
    registered_topologies,
    scale_free_topology,
    topology_for,
)
from repro.util.errors import ConfigurationError

GENERATORS = {
    "distance_rule": distance_rule_topology,
    "erdos_renyi": erdos_renyi_topology,
    "fixed_degree": fixed_degree_topology,
    "gaussian_degree": gaussian_degree_topology,
    "nw_small_world": nw_small_world_topology,
    "scale_free": scale_free_topology,
}


def csr_triple(topology):
    csr = topology.graph.to_csr()
    return csr.indptr, csr.indices, csr.ids


def mean_degree(topology):
    graph = topology.graph
    return 2.0 * graph.edge_count() / len(graph)


class TestGeneratorBasics:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_node_count_and_symmetry(self, name):
        topo = GENERATORS[name](200, degree=6, rng=3)
        assert len(topo.graph) == 200
        topo.graph.check_symmetry()

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_mean_degree_tracks_target(self, name):
        topo = GENERATORS[name](400, degree=8, rng=11)
        # Wide tolerance: border effects (distance_rule), rounding to an
        # integer lattice parameter (small world, scale free).
        assert 4.0 <= mean_degree(topo) <= 12.0

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_same_seed_bit_identical(self, name):
        a = csr_triple(GENERATORS[name](150, degree=5, rng=7))
        b = csr_triple(GENERATORS[name](150, degree=5, rng=7))
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_streaming_chunks_bit_identical(self, name):
        full = csr_triple(GENERATORS[name](150, degree=5, rng=7))
        chunked = csr_triple(
            GENERATORS[name](150, degree=5, rng=7, max_pairs=17))
        for left, right in zip(full, chunked):
            np.testing.assert_array_equal(left, right)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_rejects_nonpositive_count(self, name):
        with pytest.raises(ConfigurationError):
            GENERATORS[name](0, degree=4)

    def test_distance_rule_attaches_positions(self):
        topo = distance_rule_topology(100, degree=6, rng=2)
        assert set(topo.positions) == set(topo.graph.nodes)
        assert topo.radius is not None

    def test_combinatorial_models_have_no_geometry(self):
        topo = erdos_renyi_topology(50, degree=4, rng=2)
        assert topo.positions == {}
        assert topo.radius is None


class TestParameterValidation:
    def test_erdos_renyi_needs_p_or_degree(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_topology(50)

    def test_erdos_renyi_rejects_conflicting_p_and_degree(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_topology(50, p=0.1, degree=4)

    def test_erdos_renyi_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_topology(50, p=1.5)

    def test_distance_rule_rejects_unknown_decay(self):
        with pytest.raises(ConfigurationError):
            distance_rule_topology(50, degree=4, decay="cubic")

    def test_fixed_degree_needs_feasible_degree(self):
        with pytest.raises(ConfigurationError):
            fixed_degree_topology(4, degree=5)

    def test_nw_small_world_rejects_conflicting_k_and_degree(self):
        with pytest.raises(ConfigurationError):
            nw_small_world_topology(50, k=2, degree=6)

    def test_scale_free_rejects_conflicting_m_and_degree(self):
        with pytest.raises(ConfigurationError):
            scale_free_topology(50, m=2, degree=6)


class TestRegistry:
    def test_all_generators_registered(self):
        names = registered_topologies()
        for name in GENERATORS:
            assert name in names
        for name in ("figure1", "line", "ring", "star", "complete",
                     "poisson", "uniform", "file"):
            assert name in names

    def test_topology_for_unknown_name(self):
        with pytest.raises(ConfigurationError, match="registered generators"):
            topology_for("no_such_model")

    def test_geometric_flag(self):
        assert is_geometric("distance_rule")
        assert is_geometric("figure1")
        assert not is_geometric("erdos_renyi")

    def test_degree_parameters_metadata(self):
        assert degree_parameters("erdos_renyi") == ("p",)
        assert degree_parameters("nw_small_world") == ("k",)
        assert degree_parameters("scale_free") == ("m",)
        assert degree_parameters("line") == ()

    def test_accepted_parameters_exclude_rng(self):
        params = accepted_parameters("erdos_renyi")
        assert "rng" not in params
        assert "count" in params and "p" in params

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ConfigurationError):
            @register_topology("erdos_renyi")
            def clash(count=None, rng=None):  # pragma: no cover
                raise AssertionError

    def test_spec_parse_and_round_trip(self):
        spec = as_topology_spec("erdos_renyi:count=50,degree=4,seed=9")
        assert spec.name == "erdos_renyi"
        assert spec.param_dict() == {"count": 50, "degree": 4}
        assert spec.seed == 9
        assert as_topology_spec(str(spec)) == spec

    def test_file_spec_bare_path_shorthand(self):
        spec = as_topology_spec("file:/tmp/trace.gml")
        assert spec.name == "file"
        assert spec.param_dict() == {"path": "/tmp/trace.gml"}

    def test_build_spec_attaches_spec_and_seed_determinism(self):
        spec = "nw_small_world:count=80,degree=4,seed=5"
        a = build_topology_spec(spec)
        b = build_topology_spec(spec)
        assert isinstance(a.spec, TopologySpec)
        assert str(a.spec) == "nw_small_world:count=80,degree=4,seed=5"
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_build_spec_rng_overrides_seed(self):
        spec = "erdos_renyi:count=60,degree=4,seed=5"
        default = build_topology_spec(spec)
        overridden = build_topology_spec(spec, rng=123)
        assert set(default.graph.edges) != set(overridden.graph.edges)

    def test_build_spec_reports_accepted_parameters(self):
        with pytest.raises(ConfigurationError, match="accepted parameters"):
            build_topology_spec("erdos_renyi:count=50,degree=4,bogus=1")

    def test_topology_build_classmethod(self):
        topo = Topology.build("ring:count=6")
        assert len(topo.graph) == 6
        assert all(topo.graph.degree(n) == 2 for n in topo.graph)


class TestScaleFreeShape:
    def test_degree_distribution_is_skewed(self):
        topo = scale_free_topology(500, m=3, rng=13)
        degrees = sorted(topo.graph.degree(n) for n in topo.graph)
        assert degrees[-1] >= 4 * (sum(degrees) / len(degrees))
        assert degrees[0] >= 1

    def test_connected_by_construction(self):
        from repro.graph.paths import connected_components
        topo = scale_free_topology(200, m=2, rng=4)
        assert len(connected_components(topo.graph)) == 1


class TestSmallWorldShape:
    def test_lattice_backbone_present(self):
        # NW adds shortcuts but never removes lattice edges.
        topo = nw_small_world_topology(60, k=2, p=0.2, rng=8)
        edges = set(topo.graph.edges)
        for i in range(60):
            for offset in (1, 2):
                u, v = i, (i + offset) % 60
                assert (min(u, v), max(u, v)) in edges

    def test_zero_rewiring_is_pure_lattice(self):
        topo = nw_small_world_topology(40, k=3, p=0.0, rng=8)
        assert topo.graph.edge_count() == 40 * 3


class TestDistanceRuleDecay:
    def test_exp_and_linear_differ(self):
        exp = csr_triple(distance_rule_topology(150, degree=6, rng=3,
                                                decay="exp"))
        linear = csr_triple(distance_rule_topology(150, degree=6, rng=3,
                                                   decay="linear"))
        assert not np.array_equal(exp[1], linear[1])

    def test_linear_cutoff_bounds_radius(self):
        topo = distance_rule_topology(150, degree=6, rng=3, decay="linear")
        scale = topo.radius
        positions = topo.positions
        for u, v in topo.graph.edges:
            assert math.dist(positions[u], positions[v]) <= scale + 1e-12
