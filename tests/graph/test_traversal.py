"""Unit tests for the CSR traversal kernel."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.traversal import (
    csr_bfs_distances,
    csr_bfs_parents,
    csr_component_labels,
    csr_multi_source_distances,
    csr_shortest_path,
    resolve_forest,
)
from repro.util.errors import TopologyError


def rows(graph):
    return graph.to_csr()


class TestBfsDistances:
    def test_path_graph(self):
        csr = rows(Graph(nodes=range(5), edges=[(i, i + 1) for i in range(4)]))
        assert csr_bfs_distances(csr, 0).tolist() == [0, 1, 2, 3, 4]
        assert csr_bfs_distances(csr, 2).tolist() == [2, 1, 0, 1, 2]

    def test_unreachable_marked_minus_one(self):
        csr = rows(Graph(nodes=[0, 1, 2], edges=[(0, 1)]))
        assert csr_bfs_distances(csr, 0).tolist() == [0, 1, -1]

    def test_single_node(self):
        csr = rows(Graph(nodes=[7]))
        assert csr_bfs_distances(csr, 0).tolist() == [0]

    def test_out_of_range_source_raises(self):
        csr = rows(Graph(nodes=[0]))
        with pytest.raises(TopologyError):
            csr_bfs_distances(csr, 5)


class TestMultiSource:
    def test_two_sources_meet_in_the_middle(self):
        csr = rows(Graph(nodes=range(5), edges=[(i, i + 1) for i in range(4)]))
        dist = csr_multi_source_distances(csr, np.array([0, 4]))
        assert dist.tolist() == [0, 1, 2, 1, 0]

    def test_empty_sources(self):
        csr = rows(Graph(nodes=range(3), edges=[(0, 1)]))
        dist = csr_multi_source_distances(csr, np.empty(0, dtype=np.int64))
        assert dist.tolist() == [-1, -1, -1]

    def test_label_constrained_waves_stay_home(self):
        # 0-1-2-3-4 with clusters {0,1,2} and {3,4}: the wave from 0 must
        # not cross the 2-3 edge even though the graph is connected.
        csr = rows(Graph(nodes=range(5), edges=[(i, i + 1) for i in range(4)]))
        labels = np.array([0, 0, 0, 3, 3])
        dist = csr_multi_source_distances(csr, np.array([0, 3]),
                                          labels=labels)
        assert dist.tolist() == [0, 1, 2, 0, 1]

    def test_label_constrained_disconnection_detected(self):
        # 0-1-2 with cluster {0, 2}: 2 is unreachable from 0 inside the
        # label region (1 belongs to another cluster).
        csr = rows(Graph(edges=[(0, 1), (1, 2)]))
        labels = np.array([0, 1, 0])
        dist = csr_multi_source_distances(csr, np.array([0, 1]),
                                          labels=labels)
        assert dist.tolist() == [0, 0, -1]


class TestShortestPath:
    def test_trivial_and_line(self):
        csr = rows(Graph(nodes=range(5), edges=[(i, i + 1) for i in range(4)]))
        assert csr_shortest_path(csr, 1, 1) == [1]
        assert csr_shortest_path(csr, 0, 4) == [0, 1, 2, 3, 4]

    def test_disconnected_returns_none(self):
        csr = rows(Graph(nodes=[0, 1]))
        assert csr_shortest_path(csr, 0, 1) is None

    def test_out_of_range_raises(self):
        csr = rows(Graph(nodes=[0]))
        with pytest.raises(TopologyError):
            csr_shortest_path(csr, 0, 9)

    def test_path_is_shortest_on_cycle(self):
        edges = [(i, (i + 1) % 6) for i in range(6)]
        csr = rows(Graph(edges=edges))
        path = csr_shortest_path(csr, 0, 3)
        assert len(path) == 4
        assert path[0] == 0 and path[-1] == 3

    def test_label_constraint_blocks_shortcuts(self):
        # Square 0-1-2-3-0 plus chord 0-2; cluster {0, 1, 2} excludes 3,
        # so 0 -> 2 must use the chord or 1, never 3.
        csr = rows(Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]))
        labels = np.array([0, 0, 0, 9])
        path = csr_shortest_path(csr, 0, 2, labels=labels)
        assert 3 not in path
        assert len(path) == 2  # the chord

    def test_label_mismatch_is_unreachable(self):
        csr = rows(Graph(edges=[(0, 1)]))
        assert csr_shortest_path(csr, 0, 1,
                                 labels=np.array([0, 1])) is None


class TestBfsParents:
    @staticmethod
    def unwind(parent, source, target):
        if parent[target] < 0 and target != source:
            return None
        path = [target]
        while path[-1] != source:
            path.append(int(parent[path[-1]]))
        path.reverse()
        return path

    def test_distances_match_bfs(self):
        csr = rows(Graph(nodes=range(5), edges=[(i, i + 1) for i in range(4)]))
        parent, dist = csr_bfs_parents(csr, 2)
        assert dist.tolist() == csr_bfs_distances(csr, 2).tolist()
        assert parent[2] == -1

    def test_unwinding_reproduces_shortest_path(self):
        # Dense-ish random graph: every (source, target) unwind must be
        # byte-identical to the early-exit path search -- the property
        # the serving router's leg cache rests on.
        rng = np.random.default_rng(5)
        n = 24
        graph = Graph(nodes=range(n))
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.15:
                    graph.add_edge(u, v)
        csr = rows(graph)
        for source in range(0, n, 5):
            parent, _dist = csr_bfs_parents(csr, source)
            for target in range(n):
                expected = csr_shortest_path(csr, source, target)
                assert self.unwind(parent, source, target) == expected

    def test_label_constrained_matches_constrained_search(self):
        csr = rows(Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]))
        labels = np.array([0, 0, 0, 9])
        parent, dist = csr_bfs_parents(csr, 0, labels=labels)
        assert dist[3] == -1 and parent[3] == -1
        assert self.unwind(parent, 0, 2) == \
            csr_shortest_path(csr, 0, 2, labels=labels)

    def test_unreached_rows_marked(self):
        csr = rows(Graph(nodes=[0, 1, 2], edges=[(0, 1)]))
        parent, dist = csr_bfs_parents(csr, 0)
        assert parent.tolist() == [-1, 0, -1]
        assert dist.tolist() == [0, 1, -1]

    def test_out_of_range_source_raises(self):
        with pytest.raises(TopologyError):
            csr_bfs_parents(rows(Graph(nodes=[0])), 3)


class TestComponents:
    def test_labels_are_component_minima(self):
        graph = Graph(nodes=[9], edges=[(0, 1), (1, 2), (4, 5)])
        # insertion order: 9, 0, 1, 2, 4, 5 -> rows 0..5
        labels = csr_component_labels(graph.to_csr())
        assert labels.tolist() == [0, 1, 1, 1, 4, 4]

    def test_empty_and_isolated(self):
        assert csr_component_labels(Graph().to_csr()).size == 0
        labels = csr_component_labels(Graph(nodes=range(3)).to_csr())
        assert labels.tolist() == [0, 1, 2]

    def test_long_path_single_component(self):
        n = 257
        graph = Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])
        labels = csr_component_labels(graph.to_csr())
        assert (labels == 0).all()


class TestResolveForest:
    def test_chain_depths(self):
        roots, depths = resolve_forest(np.array([0, 0, 1, 2]))
        assert roots.tolist() == [0, 0, 0, 0]
        assert depths.tolist() == [0, 1, 2, 3]

    def test_forest_of_singletons(self):
        roots, depths = resolve_forest(np.arange(4))
        assert roots.tolist() == [0, 1, 2, 3]
        assert depths.tolist() == [0, 0, 0, 0]

    def test_two_trees(self):
        roots, depths = resolve_forest(np.array([0, 0, 3, 3, 2]))
        assert roots.tolist() == [0, 0, 3, 3, 3]
        assert depths.tolist() == [0, 1, 1, 0, 2]

    def test_empty(self):
        roots, depths = resolve_forest(np.empty(0, dtype=np.int64))
        assert roots.size == 0 and depths.size == 0

    def test_cycle_raises(self):
        with pytest.raises(TopologyError):
            resolve_forest(np.array([1, 0]))
        with pytest.raises(TopologyError):
            resolve_forest(np.array([1, 2, 0, 3]))

    def test_out_of_range_raises(self):
        with pytest.raises(TopologyError):
            resolve_forest(np.array([5]))

    def test_deep_chain(self):
        n = 300
        parent = np.maximum(np.arange(n) - 1, 0)
        roots, depths = resolve_forest(parent)
        assert (roots == 0).all()
        assert depths.tolist() == list(range(n))
