"""Streaming pair construction: chunked paths vs the one-shot references."""

import pickle

import numpy as np
import pytest

from repro.graph.geometry import chunk_pairs, pairs_within_range, unit_disk_graph
from repro.graph.graph import Graph
from repro.graph.quasi_udg import quasi_unit_disk_graph
from repro.util.errors import ConfigurationError, TopologyError


def random_points(seed, count):
    return np.random.default_rng(seed).uniform(0, 1, size=(count, 2))


class TestChunkPairs:
    @pytest.mark.parametrize("count", [0, 1, 2, 40, 500])
    @pytest.mark.parametrize("max_pairs", [1, 17, 1000, None])
    def test_concatenation_equals_one_shot(self, count, max_pairs):
        points = random_points(count + 1, count)
        expected = pairs_within_range(points, 0.12)
        chunks = list(chunk_pairs(points, 0.12, max_pairs=max_pairs))
        if chunks:
            got = np.concatenate(chunks)
        else:
            got = np.empty((0, 2), dtype=np.int64)
        assert np.array_equal(got, expected)

    def test_chunks_respect_max_pairs(self):
        points = random_points(7, 300)
        for chunk in chunk_pairs(points, 0.2, max_pairs=17):
            assert 0 < len(chunk) <= 17

    def test_stream_is_lexicographically_increasing(self):
        points = random_points(9, 250)
        last = (-1, -1)
        for chunk in chunk_pairs(points, 0.15, max_pairs=11):
            for i, j in chunk.tolist():
                assert i < j
                assert (i, j) > last
                last = (i, j)

    def test_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            chunk_pairs(random_points(0, 4), -0.1)
        with pytest.raises(ConfigurationError):
            chunk_pairs(np.zeros((3, 3)), 0.1)


class TestFromPairChunks:
    def test_equals_from_pair_array(self):
        points = random_points(21, 200)
        pairs = pairs_within_range(points, 0.15)
        eager = Graph.from_pair_array(pairs, len(points))
        lazy = Graph.from_pair_chunks(
            chunk_pairs(points, 0.15, max_pairs=37), len(points)
        )
        assert lazy.nodes == eager.nodes
        assert set(lazy.edges) == set(eager.edges)
        for node in eager:
            assert lazy.neighbors(node) == eager.neighbors(node)
        assert np.array_equal(lazy.to_csr().indptr, eager.to_csr().indptr)
        assert np.array_equal(lazy.to_csr().indices, eager.to_csr().indices)

    def test_csr_paths_answer_without_materializing(self):
        points = random_points(22, 150)
        graph = Graph.from_pair_chunks(chunk_pairs(points, 0.15), len(points))
        assert graph._adj_map is None
        assert len(graph) == 150
        assert 3 in graph
        assert graph.degree(3) == len(graph.neighbors(3))
        assert graph.edge_count() == len(pairs_within_range(points, 0.15))
        assert graph._adj_map is None  # still lazy after CSR-shaped queries

    def test_rejects_non_canonical_streams(self):
        with pytest.raises(TopologyError):
            Graph.from_pair_chunks([np.array([[1, 0]])], 3)
        with pytest.raises(TopologyError):
            Graph.from_pair_chunks([np.array([[0, 2]]), np.array([[0, 1]])], 3)
        with pytest.raises(TopologyError):
            Graph.from_pair_chunks([np.array([[0, 5]])], 3)
        with pytest.raises(TopologyError):
            Graph.from_pair_chunks([np.array([[0.5, 1.5]])], 3)

    def test_lazy_graph_pickles_compactly_and_roundtrips(self):
        points = random_points(23, 400)
        graph = Graph.from_pair_chunks(chunk_pairs(points, 0.1), len(points))
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._adj_map is None
        assert clone.nodes == graph.nodes
        assert set(clone.edges) == set(graph.edges)

    def test_mutation_after_streaming_build(self):
        graph = Graph.from_pair_chunks([np.array([[0, 1], [1, 2]])], 4)
        graph.add_edge(0, 3)
        assert graph.has_edge(0, 3)
        assert graph.neighbors(1) == {0, 2}


class TestStreamingUnitDisk:
    def test_streamed_equals_eager(self):
        points = random_points(31, 300)
        eager_graph, eager_pos = unit_disk_graph(points, 0.12)
        lazy_graph, lazy_pos = unit_disk_graph(points, 0.12, max_pairs=23)
        assert lazy_graph.nodes == eager_graph.nodes
        assert set(lazy_graph.edges) == set(eager_graph.edges)
        assert lazy_pos == eager_pos

    def test_streamed_respects_node_ids(self):
        points = random_points(32, 50)
        names = [f"n{i}" for i in range(len(points))]
        graph, positions = unit_disk_graph(points, 0.2, node_ids=names,
                                           max_pairs=7)
        assert graph.nodes == names
        assert set(positions) == set(names)


class TestStreamingQuasiUDG:
    def test_chunked_draws_match_one_shot(self):
        points = random_points(41, 260)
        eager, _ = quasi_unit_disk_graph(
            points, 0.08, 0.16, rng=np.random.default_rng(5))
        lazy, _ = quasi_unit_disk_graph(
            points, 0.08, 0.16, rng=np.random.default_rng(5), max_pairs=19)
        assert set(lazy.edges) == set(eager.edges)

    def test_degenerate_gray_zone_streams(self):
        points = random_points(42, 120)
        eager, _ = quasi_unit_disk_graph(points, 0.1, 0.1, rng=1)
        lazy, _ = quasi_unit_disk_graph(points, 0.1, 0.1, rng=1, max_pairs=13)
        assert set(lazy.edges) == set(eager.edges)
        assert set(eager.edges) == {
            tuple(p) for p in pairs_within_range(points, 0.1).tolist()}
