"""Tests for topology generators, especially the paper's workloads."""

import math

import numpy as np
import pytest

from repro.graph.generators import (
    Topology,
    complete_topology,
    grid_topology,
    line_topology,
    poisson_topology,
    ring_topology,
    square_grid_topology,
    star_topology,
    uniform_topology,
)
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError


class TestTopology:
    def test_default_ids_are_node_labels(self):
        topo = line_topology(3)
        assert topo.ids == {0: 0, 1: 1, 2: 2}

    def test_ids_must_cover_nodes(self):
        graph = Graph(nodes=[1, 2])
        with pytest.raises(ConfigurationError):
            Topology(graph, ids={1: 0})

    def test_ids_must_be_unique(self):
        graph = Graph(nodes=[1, 2])
        with pytest.raises(ConfigurationError):
            Topology(graph, ids={1: 0, 2: 0})

    def test_positions_must_cover_nodes(self):
        graph = Graph(nodes=[1, 2])
        with pytest.raises(ConfigurationError):
            Topology(graph, positions={1: (0, 0)})


class TestFigure1:
    def test_has_the_nine_tabulated_nodes(self, fig1):
        assert set(fig1.graph.nodes) == set("abcdefhij")

    def test_neighborhoods_match_the_paper_text(self, fig1):
        assert fig1.graph.neighbors("a") == {"d", "i"}
        assert fig1.graph.neighbors("b") == {"c", "d", "h", "i"}
        assert fig1.graph.neighbors("h") == {"b", "i"}

    def test_neighbor_counts_match_table1(self, fig1):
        expected = {"a": 2, "b": 4, "c": 1, "d": 4, "e": 1, "f": 2,
                    "h": 2, "i": 4, "j": 2}
        for node, degree in expected.items():
            assert fig1.graph.degree(node) == degree

    def test_j_has_smaller_id_than_f(self, fig1):
        # The paper's explicit assumption for the f/j tie-break.
        assert fig1.ids["j"] < fig1.ids["f"]

    def test_positions_present_for_rendering(self, fig1):
        assert set(fig1.positions) == set(fig1.graph.nodes)


class TestGrid:
    def test_ids_increase_left_to_right_bottom_to_top(self):
        topo = grid_topology(3, 4, radius=0.4)
        # Node id row*cols+col; position x grows with col, y with row.
        assert topo.ids[0] == 0
        x0, y0 = topo.positions[0]
        x1, y1 = topo.positions[1]
        x4, y4 = topo.positions[4]
        assert x1 > x0 and y1 == y0
        assert y4 > y0 and x4 == x0

    def test_grid_size(self):
        topo = grid_topology(3, 4, radius=0.4)
        assert len(topo.graph) == 12

    def test_four_neighborhood_at_small_radius(self):
        # Radius just above spacing links orthogonal neighbors only.
        topo = grid_topology(5, 5, radius=0.26)
        center = 12  # row 2, col 2
        assert topo.graph.degree(center) == 4

    def test_eight_neighborhood_at_diagonal_radius(self):
        topo = grid_topology(5, 5, radius=0.37)  # spacing 0.25, diag 0.354
        center = 12
        assert topo.graph.degree(center) == 8

    def test_single_row_grid(self):
        topo = grid_topology(1, 5, radius=0.3)
        assert len(topo.graph) == 5
        assert topo.graph.degree(0) == 1

    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError):
            grid_topology(0, 3, radius=0.1)

    def test_square_grid_topology_near_target(self):
        topo = square_grid_topology(1000, radius=0.05)
        assert 950 <= len(topo.graph) <= 1050

    def test_square_grid_small_counts(self):
        assert len(square_grid_topology(1, 0.5).graph) == 1
        assert len(square_grid_topology(4, 0.9).graph) == 4

    def test_square_grid_never_collapses_to_one_node(self):
        # Regression guard: asking for >= 2 nodes must never round down
        # to a single-node grid (the approx_count=2 risk: rows=round(
        # sqrt(2))=1 leaves the node count entirely to cols rounding).
        for approx_count in range(2, 60):
            topo = square_grid_topology(approx_count, 0.5)
            assert len(topo.graph) >= 2, approx_count

    def test_square_grid_matches_documented_factorization(self):
        # The docstring's example: 1000 nodes -> the 32x31 = 992 grid.
        topo = square_grid_topology(1000, radius=0.05)
        assert len(topo.graph) == 992

    def test_square_grid_stays_near_square(self):
        for approx_count in (10, 50, 100, 500):
            topo = square_grid_topology(approx_count, 0.5)
            rows = int(round(math.sqrt(approx_count)))
            count = len(topo.graph)
            assert abs(count - approx_count) <= max(rows, 2)


class TestRandomDeployments:
    def test_uniform_topology_count_and_bounds(self):
        topo = uniform_topology(60, 0.1, rng=1)
        assert len(topo.graph) == 60
        for x, y in topo.positions.values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_poisson_topology_count_distribution(self):
        rng = np.random.default_rng(5)
        counts = [len(poisson_topology(100, 0.1, rng=rng).graph)
                  for _ in range(30)]
        mean = sum(counts) / len(counts)
        assert 80 <= mean <= 120  # Poisson(100), 30 samples

    def test_poisson_respects_side_scaling(self):
        rng = np.random.default_rng(6)
        counts = [len(poisson_topology(100, 0.1, rng=rng, side=2.0).graph)
                  for _ in range(20)]
        mean = sum(counts) / len(counts)
        assert 320 <= mean <= 480  # Poisson(400)

    def test_same_seed_same_topology(self):
        a = uniform_topology(40, 0.15, rng=9)
        b = uniform_topology(40, 0.15, rng=9)
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            poisson_topology(0, 0.1)
        with pytest.raises(ConfigurationError):
            uniform_topology(-1, 0.1)


class TestDeterministicShapes:
    def test_line(self):
        topo = line_topology(4)
        assert topo.graph.edge_count() == 3
        assert topo.graph.degree(0) == 1
        assert topo.graph.degree(1) == 2

    def test_ring(self):
        topo = ring_topology(5)
        assert topo.graph.edge_count() == 5
        assert all(topo.graph.degree(n) == 2 for n in topo.graph)

    def test_star(self):
        topo = star_topology(4)
        assert topo.graph.degree(0) == 4
        assert all(topo.graph.degree(i) == 1 for i in range(1, 5))

    def test_complete(self):
        topo = complete_topology(5)
        assert topo.graph.edge_count() == 10
        assert topo.graph.max_degree() == 4

    def test_minimum_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            line_topology(0)
        with pytest.raises(ConfigurationError):
            ring_topology(2)
        with pytest.raises(ConfigurationError):
            star_topology(0)
        with pytest.raises(ConfigurationError):
            complete_topology(0)
