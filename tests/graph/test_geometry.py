"""Tests for unit-disk construction, including brute-force equivalence."""

import numpy as np
import pytest

from repro.graph.geometry import pairwise_within_range, unit_disk_graph
from repro.util.errors import ConfigurationError


def brute_force_pairs(positions, radius):
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if np.hypot(*(positions[i] - positions[j])) <= radius:
                pairs.add((i, j))
    return pairs


class TestPairwiseWithinRange:
    def test_matches_brute_force_on_random_points(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            points = rng.uniform(0, 1, size=(120, 2))
            radius = float(rng.uniform(0.05, 0.3))
            fast = set(pairwise_within_range(points, radius))
            assert fast == brute_force_pairs(points, radius)

    def test_exact_boundary_distance_included(self):
        points = [(0.0, 0.0), (0.1, 0.0)]
        assert set(pairwise_within_range(points, 0.1)) == {(0, 1)}

    def test_just_outside_excluded(self):
        points = [(0.0, 0.0), (0.1000001, 0.0)]
        assert set(pairwise_within_range(points, 0.1)) == set()

    def test_coincident_points_are_linked(self):
        points = [(0.5, 0.5), (0.5, 0.5)]
        assert set(pairwise_within_range(points, 0.01)) == {(0, 1)}

    def test_empty_input(self):
        assert set(pairwise_within_range(np.empty((0, 2)), 0.1)) == set()

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            list(pairwise_within_range(np.zeros((3, 3)), 0.1))

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ConfigurationError):
            list(pairwise_within_range(np.zeros((2, 2)), 0.0))

    def test_points_spanning_many_cells(self):
        # Distances straddling cell borders must not be missed.
        points = [(x * 0.09999, 0.0) for x in range(12)]
        fast = set(pairwise_within_range(points, 0.1))
        assert fast == brute_force_pairs(points, 0.1)


class TestUnitDiskGraph:
    def test_builds_expected_edges(self):
        points = [(0.0, 0.0), (0.05, 0.0), (0.5, 0.5)]
        graph, positions = unit_disk_graph(points, 0.1)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert positions[1] == (0.05, 0.0)

    def test_custom_node_ids(self):
        points = [(0.0, 0.0), (0.05, 0.0)]
        graph, positions = unit_disk_graph(points, 0.1, node_ids=["x", "y"])
        assert graph.has_edge("x", "y")
        assert set(positions) == {"x", "y"}

    def test_node_id_count_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            unit_disk_graph([(0, 0)], 0.1, node_ids=["a", "b"])

    def test_duplicate_node_ids_raise(self):
        with pytest.raises(ConfigurationError):
            unit_disk_graph([(0, 0), (1, 1)], 0.1, node_ids=["a", "a"])

    def test_symmetry_invariant_holds(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(80, 2))
        graph, _ = unit_disk_graph(points, 0.2)
        graph.check_symmetry()
