"""Tests for unit-disk construction, including brute-force equivalence."""

import numpy as np
import pytest

from repro.graph.geometry import (
    pairs_within_range,
    pairwise_within_range,
    unit_disk_graph,
)
from repro.util.errors import ConfigurationError


def brute_force_pairs(positions, radius):
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if np.hypot(*(positions[i] - positions[j])) <= radius:
                pairs.add((i, j))
    return pairs


class TestPairwiseWithinRange:
    def test_matches_brute_force_on_random_points(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            points = rng.uniform(0, 1, size=(120, 2))
            radius = float(rng.uniform(0.05, 0.3))
            fast = set(pairwise_within_range(points, radius))
            assert fast == brute_force_pairs(points, radius)

    def test_exact_boundary_distance_included(self):
        points = [(0.0, 0.0), (0.1, 0.0)]
        assert set(pairwise_within_range(points, 0.1)) == {(0, 1)}

    def test_just_outside_excluded(self):
        points = [(0.0, 0.0), (0.1000001, 0.0)]
        assert set(pairwise_within_range(points, 0.1)) == set()

    def test_coincident_points_are_linked(self):
        points = [(0.5, 0.5), (0.5, 0.5)]
        assert set(pairwise_within_range(points, 0.01)) == {(0, 1)}

    def test_empty_input(self):
        assert set(pairwise_within_range(np.empty((0, 2)), 0.1)) == set()

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            list(pairwise_within_range(np.zeros((3, 3)), 0.1))

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ConfigurationError):
            list(pairwise_within_range(np.zeros((2, 2)), 0.0))

    def test_points_spanning_many_cells(self):
        # Distances straddling cell borders must not be missed.
        points = [(x * 0.09999, 0.0) for x in range(12)]
        fast = set(pairwise_within_range(points, 0.1))
        assert fast == brute_force_pairs(points, 0.1)

    def test_property_random_sets_match_brute_force(self):
        # Property-style sweep: many sizes and radii, including radii
        # large enough for a single cell and small enough for hundreds.
        rng = np.random.default_rng(42)
        for n in (1, 2, 7, 40, 150):
            for radius in (0.01, 0.07, 0.25, 0.9, 2.0):
                points = rng.uniform(0, 1, size=(n, 2))
                fast = set(pairwise_within_range(points, radius))
                assert fast == brute_force_pairs(points, radius), \
                    (n, radius)

    def test_property_exact_boundary_distances(self):
        # A lattice with spacing exactly equal to the radius: every
        # orthogonal neighbor pair sits at distance == radius and must be
        # included (<=, not <), in every direction.
        radius = 0.125
        points = [(col * radius, row * radius)
                  for row in range(5) for col in range(5)]
        fast = set(pairwise_within_range(points, radius))
        expected = brute_force_pairs(points, radius)
        assert fast == expected
        # Sanity: the boundary pairs really are there (4-neighborhood).
        assert (0, 1) in fast and (0, 5) in fast and (0, 6) not in fast

    def test_property_negative_and_offset_coordinates(self):
        # Cell binning must not assume the unit square.
        rng = np.random.default_rng(3)
        points = rng.uniform(-5.0, 5.0, size=(80, 2))
        fast = set(pairwise_within_range(points, 0.8))
        assert fast == brute_force_pairs(points, 0.8)

    def test_many_coincident_points(self):
        points = [(0.3, 0.3)] * 6 + [(0.9, 0.9)]
        fast = set(pairwise_within_range(points, 0.05))
        assert fast == {(i, j) for i in range(6) for j in range(i + 1, 6)}


class TestPairsWithinRangeArray:
    def test_returns_sorted_int_array(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(0, 1, size=(60, 2))
        pairs = pairs_within_range(points, 0.2)
        assert pairs.dtype == np.int64
        assert pairs.ndim == 2 and pairs.shape[1] == 2
        assert (pairs[:, 0] < pairs[:, 1]).all()
        # Lexicographic order makes the output deterministic.
        keys = list(map(tuple, pairs.tolist()))
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)  # no duplicates

    def test_agrees_with_tuple_view(self):
        rng = np.random.default_rng(9)
        points = rng.uniform(0, 1, size=(50, 2))
        pairs = pairs_within_range(points, 0.3)
        assert [tuple(p) for p in pairs.tolist()] == \
            pairwise_within_range(points, 0.3)

    def test_empty_cases(self):
        assert pairs_within_range(np.empty((0, 2)), 0.1).shape == (0, 2)
        assert pairs_within_range([(0.5, 0.5)], 0.1).shape == (0, 2)


class TestUnitDiskGraph:
    def test_builds_expected_edges(self):
        points = [(0.0, 0.0), (0.05, 0.0), (0.5, 0.5)]
        graph, positions = unit_disk_graph(points, 0.1)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert positions[1] == (0.05, 0.0)

    def test_custom_node_ids(self):
        points = [(0.0, 0.0), (0.05, 0.0)]
        graph, positions = unit_disk_graph(points, 0.1, node_ids=["x", "y"])
        assert graph.has_edge("x", "y")
        assert set(positions) == {"x", "y"}

    def test_node_id_count_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            unit_disk_graph([(0, 0)], 0.1, node_ids=["a", "b"])

    def test_duplicate_node_ids_raise(self):
        with pytest.raises(ConfigurationError):
            unit_disk_graph([(0, 0), (1, 1)], 0.1, node_ids=["a", "a"])

    def test_symmetry_invariant_holds(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(80, 2))
        graph, _ = unit_disk_graph(points, 0.2)
        graph.check_symmetry()
