"""Round-trip tests for graph I/O (edge list and GML)."""

import numpy as np
import pytest

from repro.graph.generators import Topology, figure1_topology, uniform_topology
from repro.graph.graph import Graph
from repro.graph.io import (
    FORMATS,
    file_topology,
    infer_format,
    load_graph,
    save_graph,
)
from repro.graph.models import build_topology_spec
from repro.util.errors import ConfigurationError


def sparse_topology():
    """Isolated node, non-contiguous integer ids, explicit tie-breaks."""
    graph = Graph(nodes=[10, 55, 7, 999], edges=[(55, 7)])
    return Topology(graph, ids={10: 3, 55: 0, 7: 2, 999: 1})


def assert_round_trip(topology, path):
    loaded = load_graph(path)
    left, right = topology.graph.to_csr(), loaded.graph.to_csr()
    np.testing.assert_array_equal(left.indptr, right.indptr)
    np.testing.assert_array_equal(left.indices, right.indices)
    np.testing.assert_array_equal(left.ids, right.ids)
    assert loaded.ids == topology.ids
    assert loaded.positions == topology.positions
    assert loaded.radius == topology.radius
    return loaded


@pytest.mark.parametrize("format", FORMATS)
class TestRoundTrip:
    def test_geometric_uniform(self, tmp_path, format):
        topology = uniform_topology(30, 0.2, rng=4)
        path = tmp_path / f"uniform.{format}"
        save_graph(topology, path, format=format)
        assert_round_trip(topology, path)

    def test_string_node_labels(self, tmp_path, format):
        topology = figure1_topology()
        path = tmp_path / f"fig1.{format}"
        save_graph(topology, path, format=format)
        loaded = assert_round_trip(topology, path)
        assert set(loaded.graph.nodes) == set("abcdefhij")

    def test_isolated_nodes_and_noncontiguous_ids(self, tmp_path, format):
        topology = sparse_topology()
        path = tmp_path / f"sparse.{format}"
        save_graph(topology, path, format=format)
        loaded = assert_round_trip(topology, path)
        assert loaded.graph.degree(999) == 0
        assert loaded.ids[55] == 0

    def test_save_load_save_is_stable(self, tmp_path, format):
        topology = uniform_topology(20, 0.25, rng=9)
        first = tmp_path / f"a.{format}"
        second = tmp_path / f"b.{format}"
        save_graph(topology, first, format=format)
        save_graph(load_graph(first), second, format=format)
        assert first.read_text() == second.read_text()

    def test_combinatorial_graph_without_geometry(self, tmp_path, format):
        topology = build_topology_spec("erdos_renyi:count=40,degree=4,seed=2")
        path = tmp_path / f"er.{format}"
        save_graph(topology, path, format=format)
        loaded = assert_round_trip(topology, path)
        assert loaded.positions == {}
        assert loaded.radius is None


class TestFormatInference:
    def test_extension_mapping(self):
        assert infer_format("trace.edges") == "edges"
        assert infer_format("trace.txt") == "edges"
        assert infer_format("trace.gml") == "gml"
        assert infer_format("TRACE.GML") == "gml"

    def test_explicit_format_wins(self):
        assert infer_format("trace.gml", format="edges") == "edges"

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError):
            infer_format("trace.gml", format="graphml")

    def test_uninferrable_extension_rejected(self):
        with pytest.raises(ConfigurationError):
            infer_format("trace.dat")


class TestFileTopology:
    def test_loads_through_registry(self, tmp_path):
        topology = uniform_topology(15, 0.3, rng=1)
        path = tmp_path / "t.gml"
        save_graph(topology, path)
        via_spec = build_topology_spec(f"file:{path}")
        assert set(via_spec.graph.edges) == set(topology.graph.edges)
        assert via_spec.spec.name == "file"

    def test_missing_path_parameter(self):
        with pytest.raises(ConfigurationError, match="path="):
            file_topology()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            file_topology(path=str(tmp_path / "nope.gml"))


class TestMalformedFiles:
    def test_edge_list_without_magic(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1\n")
        with pytest.raises(ConfigurationError, match="header"):
            load_graph(path)

    def test_edge_list_node_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("# repro edge list v1\n# nodes 2\na 0\n# edges 0\n")
        with pytest.raises(ConfigurationError, match="declares 2 nodes"):
            load_graph(path)

    def test_edge_list_duplicate_node(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text(
            "# repro edge list v1\n# nodes 2\na 0\na 1\n# edges 0\n")
        with pytest.raises(ConfigurationError, match="repeats"):
            load_graph(path)

    def test_gml_without_graph_block(self, tmp_path):
        path = tmp_path / "bad.gml"
        path.write_text("Creator \"nobody\"\n")
        with pytest.raises(ConfigurationError, match="graph block"):
            load_graph(path)

    def test_gml_edge_to_unknown_node(self, tmp_path):
        path = tmp_path / "bad.gml"
        path.write_text(
            "graph [\n  node [ id 0 ]\n"
            "  edge [ source 0 target 7 ]\n]\n")
        with pytest.raises(ConfigurationError, match="unknown node id"):
            load_graph(path)


class TestForeignGml:
    def test_minimal_third_party_gml(self, tmp_path):
        # No labels, no ties, unknown attributes: the interchange case.
        path = tmp_path / "foreign.gml"
        path.write_text(
            "# exported elsewhere\n"
            "graph [\n"
            "  directed 0\n"
            "  comment \"two nodes one edge\"\n"
            "  node [ id 4 value 1.5 ]\n"
            "  node [ id 9 ]\n"
            "  edge [ source 4 target 9 weight 2 ]\n"
            "]\n")
        topology = load_graph(path)
        assert set(topology.graph.nodes) == {4, 9}
        assert topology.graph.degree(4) == 1
        assert topology.ids == {4: 0, 9: 1}  # file-order tie default
