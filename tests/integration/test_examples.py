"""Every example script must run cleanly (small arguments where possible)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", []),
    ("grid_pathology.py", ["144", "0.15"]),
    ("fault_recovery.py", []),
    ("protocol_trace.py", []),
    ("mobility_stability.py", ["80", "16"]),
    ("hierarchical_routing.py", ["150", "0.15"]),
    ("energy_lifetime.py", ["80", "40"]),
]


@pytest.mark.parametrize("script,args", CASES,
                         ids=[case[0] for case in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
