"""Integration: the distributed protocol stabilizes to the oracle fixpoint.

Lemma 2's determinism claim, checked end to end: once every cache is
accurate, the protocol's parents and heads equal the centralized oracle's
output under the same DAG names, for every configuration of the algorithm.
"""

import pytest

from repro.clustering.oracle import compute_clustering
from repro.graph.generators import square_grid_topology, uniform_topology
from repro.protocols.stack import extract_clustering, standard_stack
from repro.runtime.simulator import StepSimulator


def converge(topology, seed, **stack_options):
    stack = standard_stack(topology=topology, **stack_options)
    sim = StepSimulator(topology, stack, rng=seed)
    sim.run(60)
    return sim


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_basic_with_dag(self, seed):
        topo = uniform_topology(50, 0.2, rng=seed)
        sim = converge(topo, seed)
        oracle = compute_clustering(topo.graph, tie_ids=topo.ids,
                                    dag_ids=sim.shared_map("dag_id"))
        assert extract_clustering(sim).parents == oracle.parents

    @pytest.mark.parametrize("seed", range(4))
    def test_basic_without_dag(self, seed):
        topo = uniform_topology(50, 0.2, rng=seed + 10)
        sim = converge(topo, seed, use_dag=False)
        oracle = compute_clustering(topo.graph, tie_ids=topo.ids)
        assert extract_clustering(sim).parents == oracle.parents

    @pytest.mark.parametrize("seed", range(4))
    def test_fusion(self, seed):
        topo = uniform_topology(50, 0.2, rng=seed + 20)
        sim = converge(topo, seed, fusion=True)
        oracle = compute_clustering(topo.graph, tie_ids=topo.ids,
                                    dag_ids=sim.shared_map("dag_id"),
                                    fusion=True)
        assert extract_clustering(sim, fusion=True).parents == oracle.parents

    def test_on_the_adversarial_grid(self):
        topo = square_grid_topology(64, radius=0.25)
        sim = converge(topo, 3, use_dag=False)
        oracle = compute_clustering(topo.graph, tie_ids=topo.ids)
        assert extract_clustering(sim).parents == oracle.parents
        assert oracle.cluster_count == 1  # the pathology itself

    @pytest.mark.parametrize("seed", range(3))
    def test_incumbent_reaches_a_stationary_state(self, seed):
        from repro.stabilization.predicates import clustering_legitimate
        topo = uniform_topology(50, 0.2, rng=seed + 30)
        sim = converge(topo, seed, order="incumbent")
        assert clustering_legitimate(sim, order="incumbent")
