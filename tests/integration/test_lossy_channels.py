"""Integration: convergence under lossy channels (the tau assumption).

With any per-frame success probability tau > 0 and cache timeouts sized
for the loss rate, the stack still converges -- only slower.  These tests
use generous step budgets and fixed seeds; the channel statistics make
them deterministic.
"""

import pytest

from repro.graph.generators import uniform_topology
from repro.protocols.stack import extract_clustering, standard_stack
from repro.runtime.channel import BernoulliLossChannel, \
    SlottedContentionChannel
from repro.runtime.simulator import StepSimulator
from repro.stabilization.monitor import steps_to_legitimacy
from repro.stabilization.predicates import make_stack_predicate


class TestBernoulliLoss:
    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_converges_despite_loss(self, loss):
        topo = uniform_topology(35, 0.25, rng=1)
        sim = StepSimulator(topo, standard_stack(topology=topo),
                            channel=BernoulliLossChannel(loss), rng=2,
                            cache_timeout=16)
        report = steps_to_legitimacy(sim, make_stack_predicate(), 600)
        assert report.converged

    def test_higher_loss_converges_slower_on_average(self):
        # Averaged over seeds to avoid flakiness from a single trace.
        def mean_steps(loss):
            total = 0
            for seed in range(4):
                topo = uniform_topology(30, 0.28, rng=seed)
                sim = StepSimulator(topo, standard_stack(topology=topo),
                                    channel=BernoulliLossChannel(loss),
                                    rng=seed + 50, cache_timeout=20)
                report = steps_to_legitimacy(sim, make_stack_predicate(),
                                             800)
                assert report.converged
                total += report.steps
            return total / 4

        assert mean_steps(0.4) > mean_steps(0.0)

    def test_extracted_clustering_valid_after_convergence(self):
        topo = uniform_topology(35, 0.25, rng=3)
        sim = StepSimulator(topo, standard_stack(topology=topo),
                            channel=BernoulliLossChannel(0.2), rng=4,
                            cache_timeout=16)
        report = steps_to_legitimacy(sim, make_stack_predicate(), 600)
        assert report.converged
        extract_clustering(sim).check_invariants()


class TestSlottedContention:
    def test_converges_under_realistic_mac(self):
        topo = uniform_topology(30, 0.25, rng=5)
        delta = topo.graph.max_degree()
        channel = SlottedContentionChannel(slots=4 * max(delta, 2))
        assert channel.tau_lower_bound(delta) > 0.5
        sim = StepSimulator(topo, standard_stack(topology=topo),
                            channel=channel, rng=6, cache_timeout=16)
        report = steps_to_legitimacy(sim, make_stack_predicate(), 600)
        assert report.converged
