"""Golden regression tests: exact outputs under fixed seeds.

These pin the behaviour of the full pipeline (generator -> renaming ->
clustering) to known-good values so that refactors that silently change
semantics (a different tie-break, an off-by-one in a neighborhood, an RNG
consumption-order change) fail loudly.  numpy's PCG64 stream is stable
across versions, making the values reproducible.

If a change *intentionally* alters behaviour, regenerate the constants
with the snippets in each test's docstring and say so in the commit.
"""

from repro.clustering.oracle import compute_clustering
from repro.graph.generators import square_grid_topology, uniform_topology
from repro.naming.assign import assign_dag_ids
from repro.util.rng import as_rng


class TestGoldenClustering:
    def test_uniform_50_seed7_heads(self):
        """compute_clustering over uniform_topology(50, 0.22, rng=7)."""
        topo = uniform_topology(50, 0.22, rng=7)
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids)
        assert clustering.cluster_count == 4
        assert clustering.heads == {2, 12, 15, 29}

    def test_uniform_50_seed7_structure(self):
        topo = uniform_topology(50, 0.22, rng=7)
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids)
        sizes = sorted(len(m) for m in clustering.clusters.values())
        assert sizes == sorted(sizes)
        assert sum(sizes) == 50
        assert clustering.average_tree_length() > 0

    def test_grid_100_no_dag_single_cluster(self):
        topo = square_grid_topology(100, radius=0.18)
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids)
        assert clustering.cluster_count == 1
        # The winner of the all-equal-density interior is deterministic.
        assert clustering.heads == {11}

    def test_fusion_on_seed7(self):
        topo = uniform_topology(50, 0.22, rng=7)
        basic = compute_clustering(topo.graph, tie_ids=topo.ids)
        fused = compute_clustering(topo.graph, tie_ids=topo.ids,
                                   fusion=True)
        assert fused.heads <= basic.heads
        assert fused.cluster_count == 4


class TestGoldenRenaming:
    def test_polite_renaming_seeded(self):
        """assign_dag_ids over uniform_topology(60, 0.2, rng=3), rng=11."""
        topo = uniform_topology(60, 0.2, rng=3)
        dag_ids, rounds = assign_dag_ids(topo, as_rng(11))
        assert rounds <= 3
        from repro.naming.renaming import is_locally_unique
        assert is_locally_unique(topo.graph, dag_ids)
        # Re-running with the same seeds reproduces the exact names.
        again, _ = assign_dag_ids(topo, as_rng(11))
        assert again == dag_ids


class TestGoldenExperiments:
    def test_table1_is_frozen(self):
        from repro.experiments.table1 import run_table1
        _table, exact = run_table1()
        assert exact

    def test_figure1_assignment_is_frozen(self):
        from repro.graph.generators import figure1_topology
        topo = figure1_topology()
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids)
        assert {n: clustering.parent(n) for n in sorted(topo.graph.nodes)} \
            == {"a": "d", "b": "h", "c": "b", "d": "j", "e": "i",
                "f": "j", "h": "h", "i": "h", "j": "j"}
