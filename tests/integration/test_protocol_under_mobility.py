"""Integration: the distributed stack tracking a *moving* topology.

The mobility experiments evaluate the oracle per window (as the paper's
simulations do); this suite runs the actual message-passing stack while
the topology changes under it, exercising cache expiry, link churn, and
re-stabilization end to end.
"""

import numpy as np
import pytest

from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import topology_at
from repro.protocols.stack import extract_clustering, standard_stack
from repro.runtime.simulator import StepSimulator
from repro.stabilization.monitor import steps_to_legitimacy
from repro.stabilization.predicates import make_stack_predicate, \
    neighborhood_accurate


@pytest.fixture
def moving_network():
    model = RandomDirectionModel(40, speed_range=(0.002, 0.01), rng=1)
    topology = topology_at(model.positions, radius=0.25)
    stack = standard_stack(namespace=side_namespace(topology))
    simulator = StepSimulator(topology, stack, rng=2, cache_timeout=4)
    return model, simulator


def side_namespace(topology):
    return max(topology.graph.max_degree() ** 2, 64)


class TestMovingTopology:
    def test_stack_tracks_slow_motion(self, moving_network):
        model, simulator = moving_network
        predicate = make_stack_predicate()
        assert steps_to_legitimacy(simulator, predicate, 200).converged
        # Move in small increments, giving the stack a few steps per move.
        for _ in range(6):
            model.advance(1.0)
            simulator.replace_topology(topology_at(model.positions,
                                                   radius=0.25))
            simulator.run(8)
        report = steps_to_legitimacy(simulator, predicate, 200)
        assert report.converged

    def test_neighborhoods_heal_after_motion(self, moving_network):
        model, simulator = moving_network
        simulator.run(10)
        model.advance(30.0)  # large jump: many links change at once
        simulator.replace_topology(topology_at(model.positions, radius=0.25))
        assert not neighborhood_accurate(simulator)
        simulator.run(10)  # > cache_timeout: ghosts expired, news learned
        assert neighborhood_accurate(simulator)

    def test_clustering_remains_extractable_between_moves(self,
                                                          moving_network):
        model, simulator = moving_network
        predicate = make_stack_predicate()
        steps_to_legitimacy(simulator, predicate, 200)
        for _ in range(4):
            model.advance(0.5)
            simulator.replace_topology(topology_at(model.positions,
                                                   radius=0.25))
            steps_to_legitimacy(simulator, predicate, 200)
            clustering = extract_clustering(simulator)
            clustering.check_invariants()

    def test_head_retention_measured_on_protocol(self):
        # The §5 metric computed from protocol state rather than oracles.
        model = RandomDirectionModel(40, speed_range=(0.0005, 0.002), rng=5)
        topology = topology_at(model.positions, radius=0.25)
        simulator = StepSimulator(
            topology, standard_stack(namespace=side_namespace(topology),
                                     order="incumbent"),
            rng=6, cache_timeout=4)
        simulator.run(30)
        from repro.protocols.stack import claimed_heads
        retained = []
        previous = claimed_heads(simulator)
        for _ in range(5):
            model.advance(2.0)
            simulator.replace_topology(topology_at(model.positions,
                                                   radius=0.25))
            simulator.run(10)
            current = claimed_heads(simulator)
            if previous:
                retained.append(len(previous & current) / len(previous))
            previous = current
        # Slow pedestrian-ish motion: most heads persist.
        assert np.mean(retained) > 0.5
