"""Integration: the self-stabilization property itself.

Convergence: from arbitrary corrupted states the stack reaches legitimacy.
Closure: from a legitimate state it stays legitimate (lossless channel).
"""

import pytest

from repro.graph.generators import square_grid_topology, uniform_topology
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.stabilization.faults import (
    clear_caches,
    clear_shared,
    duplicate_dag_ids,
    fabricate_caches,
    garbage_shared,
    total_corruption,
)
from repro.stabilization.monitor import (
    recovery_time,
    steps_to_legitimacy,
    verify_closure,
)
from repro.stabilization.predicates import make_stack_predicate

ALL_FAULTS = [clear_caches, clear_shared, duplicate_dag_ids, garbage_shared,
              total_corruption]


def legitimate_simulator(seed=0, **stack_options):
    topo = uniform_topology(40, 0.25, rng=seed)
    sim = StepSimulator(topo, standard_stack(topology=topo, **stack_options),
                        rng=seed)
    predicate = make_stack_predicate(**stack_options)
    report = steps_to_legitimacy(sim, predicate, 200)
    assert report.converged
    return sim, predicate


class TestConvergence:
    @pytest.mark.parametrize("fault", ALL_FAULTS,
                             ids=lambda f: f.__name__)
    def test_recovery_from_every_fault_class(self, fault):
        sim, predicate = legitimate_simulator(seed=1)
        report = recovery_time(sim, fault, predicate, 300)
        assert report.converged, f"{fault.__name__}: {report}"

    def test_recovery_from_ghost_neighbors(self):
        sim, predicate = legitimate_simulator(seed=2)
        report = recovery_time(sim, fabricate_caches(["ghost-a", "ghost-b"]),
                               predicate, 300)
        assert report.converged

    def test_recovery_with_fusion(self):
        sim, predicate = legitimate_simulator(seed=3, fusion=True)
        report = recovery_time(sim, total_corruption, predicate, 400)
        assert report.converged

    def test_recovery_on_adversarial_grid(self):
        topo = square_grid_topology(49, radius=0.3)
        sim = StepSimulator(topo, standard_stack(topology=topo), rng=4)
        predicate = make_stack_predicate()
        assert steps_to_legitimacy(sim, predicate, 300).converged
        report = recovery_time(sim, total_corruption, predicate, 300)
        assert report.converged

    def test_partial_corruption_recovers_faster_than_total(self):
        sim, predicate = legitimate_simulator(seed=5)
        nodes = sorted(sim.runtimes)[:4]
        partial = recovery_time(sim, garbage_shared, predicate, 300,
                                nodes=nodes)
        assert partial.converged
        total = recovery_time(sim, total_corruption, predicate, 300)
        assert total.converged
        assert partial.steps <= total.steps + 5


class TestClosure:
    def test_closure_basic(self):
        sim, predicate = legitimate_simulator(seed=6)
        assert verify_closure(sim, predicate, 15) == 15

    def test_closure_fusion(self):
        sim, predicate = legitimate_simulator(seed=7, fusion=True)
        assert verify_closure(sim, predicate, 15) == 15

    def test_closure_incumbent(self):
        sim, predicate = legitimate_simulator(seed=8, order="incumbent")
        assert verify_closure(sim, predicate, 15) == 15
