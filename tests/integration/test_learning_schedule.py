"""Integration: the Table 2 learning schedule on the real protocol stack."""

import pytest

from repro.experiments.table2 import learning_milestones
from repro.graph.generators import line_topology, uniform_topology


class TestLearningSchedule:
    @pytest.mark.parametrize("seed", range(5))
    def test_milestones_on_random_topologies(self, seed):
        topo = uniform_topology(40, 0.22, rng=seed)
        milestones = learning_milestones(topo, rng=seed)
        assert milestones["neighbors"] == 1
        assert milestones["density"] == 2
        assert milestones["father"] == 3
        assert milestones["head"] >= 3

    def test_head_time_is_three_plus_depth(self):
        # On a line the head identity walks the whole chain: depth hops.
        topo = line_topology(9)
        milestones = learning_milestones(topo, rng=0)
        from repro.clustering.oracle import compute_clustering
        oracle = compute_clustering(topo.graph)
        depth = max(oracle.depth(node) for node in topo.graph)
        assert milestones["head"] == pytest.approx(3 + depth - 1, abs=2)

    def test_with_dag_layer_schedule_unchanged(self):
        topo = uniform_topology(40, 0.22, rng=9)
        milestones = learning_milestones(topo, rng=9, use_dag=True)
        assert milestones["neighbors"] == 1
        assert milestones["density"] == 2
