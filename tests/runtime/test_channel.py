"""Tests for the radio channel models, including the tau bound."""

import numpy as np
import pytest

from repro.graph.generators import complete_topology, line_topology, \
    star_topology
from repro.runtime.channel import (
    BernoulliLossChannel,
    IdealChannel,
    SlottedContentionChannel,
)
from repro.runtime.frames import Frame
from repro.util.errors import ConfigurationError


def frames_for(topology):
    return {node: Frame(sender=node, payload={"n": node})
            for node in topology.graph}


class TestIdealChannel:
    def test_every_neighbor_receives(self, rng):
        topo = star_topology(4)
        inboxes = IdealChannel().deliver(frames_for(topo), topo.graph, rng)
        assert len(inboxes[0]) == 4  # center hears all leaves
        assert len(inboxes[1]) == 1  # leaves hear only the center
        assert inboxes[1][0].sender == 0

    def test_non_neighbors_do_not_receive(self, rng):
        topo = line_topology(3)
        inboxes = IdealChannel().deliver(frames_for(topo), topo.graph, rng)
        senders_at_0 = {f.sender for f in inboxes[0]}
        assert senders_at_0 == {1}

    def test_isolated_node_gets_empty_inbox(self, rng):
        from repro.graph.generators import Topology
        from repro.graph.graph import Graph
        topo = Topology(Graph(nodes=[1]))
        inboxes = IdealChannel().deliver(frames_for(topo), topo.graph, rng)
        assert inboxes[1] == []

    def test_partial_transmissions(self, rng):
        topo = line_topology(3)
        frames = {0: Frame(sender=0)}
        inboxes = IdealChannel().deliver(frames, topo.graph, rng)
        assert len(inboxes[1]) == 1
        assert inboxes[2] == []


class TestBernoulliLossChannel:
    def test_zero_loss_equals_ideal(self, rng):
        topo = complete_topology(5)
        lossy = BernoulliLossChannel(0.0).deliver(frames_for(topo),
                                                  topo.graph, rng)
        assert all(len(inbox) == 4 for inbox in lossy.values())

    def test_loss_rate_statistics(self):
        rng = np.random.default_rng(0)
        topo = complete_topology(10)
        channel = BernoulliLossChannel(0.3)
        received = 0
        total = 0
        for _ in range(50):
            inboxes = channel.deliver(frames_for(topo), topo.graph, rng)
            received += sum(len(inbox) for inbox in inboxes.values())
            total += 10 * 9
        rate = received / total
        assert 0.65 <= rate <= 0.75

    def test_tau_property(self):
        assert BernoulliLossChannel(0.25).tau == 0.75

    def test_rejects_certain_loss(self):
        with pytest.raises(ConfigurationError):
            BernoulliLossChannel(1.0)
        with pytest.raises(ConfigurationError):
            BernoulliLossChannel(-0.1)


class TestSlottedContentionChannel:
    def test_needs_two_slots(self):
        with pytest.raises(ConfigurationError):
            SlottedContentionChannel(1)

    def test_single_pair_may_collide_on_half_duplex(self):
        # Two neighbors with 2 slots: if they pick the same slot neither
        # hears the other (half-duplex); with different slots both do.
        rng = np.random.default_rng(1)
        topo = line_topology(2)
        channel = SlottedContentionChannel(2)
        outcomes = set()
        for _ in range(60):
            inboxes = channel.deliver(frames_for(topo), topo.graph, rng)
            outcomes.add((len(inboxes[0]), len(inboxes[1])))
        assert (1, 1) in outcomes  # different slots happen
        assert (0, 0) in outcomes  # same slot happens

    def test_empirical_rate_beats_tau_bound(self):
        # On the complete graph the per-link success probability *equals*
        # ((k-1)/k)^delta, so compare against the strictly smaller bound
        # for delta+1 to keep the statistical test one-sided.
        rng = np.random.default_rng(2)
        topo = complete_topology(6)
        channel = SlottedContentionChannel(12)
        tau = channel.tau_lower_bound(topo.graph.max_degree() + 1)
        received = 0
        total = 0
        for _ in range(80):
            inboxes = channel.deliver(frames_for(topo), topo.graph, rng)
            received += sum(len(inbox) for inbox in inboxes.values())
            total += 6 * 5
        assert received / total >= tau

    def test_tau_bound_positive_constant(self):
        channel = SlottedContentionChannel(8)
        assert 0 < channel.tau_lower_bound(20) < 1

    def test_tau_bound_monotone_in_slots(self):
        few = SlottedContentionChannel(4).tau_lower_bound(10)
        many = SlottedContentionChannel(64).tau_lower_bound(10)
        assert many > few

    def test_rejects_negative_delta(self):
        with pytest.raises(ConfigurationError):
            SlottedContentionChannel(4).tau_lower_bound(-1)

    def test_collision_requires_shared_slot(self):
        # With an enormous slot count collisions become negligible.
        rng = np.random.default_rng(3)
        topo = complete_topology(4)
        channel = SlottedContentionChannel(10_000)
        inboxes = channel.deliver(frames_for(topo), topo.graph, rng)
        received = sum(len(inbox) for inbox in inboxes.values())
        assert received >= 10  # at most a couple of unlucky collisions
