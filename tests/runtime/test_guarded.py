"""Tests for guarded-command programs."""

import pytest

from repro.runtime.guarded import GuardedCommand, Program, always
from repro.runtime.node import NodeRuntime
from repro.util.errors import ConfigurationError


def set_flag(name, value):
    def action(runtime, _rng):
        runtime.shared[name] = value
    return action


def flag_is(name, value):
    def guard(runtime, _rng):
        return runtime.shared.get(name) == value
    return guard


@pytest.fixture
def runtime():
    return NodeRuntime(node_id=0)


class TestGuardedCommand:
    def test_fires_when_guard_holds(self, runtime, rng):
        command = GuardedCommand("set", always, set_flag("x", 1))
        assert command.fire(runtime, rng)
        assert runtime.shared["x"] == 1

    def test_skips_when_guard_false(self, runtime, rng):
        command = GuardedCommand("set", flag_is("x", 99), set_flag("x", 1))
        assert not command.fire(runtime, rng)
        assert "x" not in runtime.shared

    def test_always_guard(self, runtime, rng):
        assert always(runtime, rng) is True


class TestProgram:
    def test_round_robin_order(self, runtime, rng):
        program = Program([
            GuardedCommand("first", always, set_flag("x", 1)),
            GuardedCommand("second", flag_is("x", 1), set_flag("x", 2)),
        ])
        fired = program.execute(runtime, rng)
        # The second command sees the first's effect within the same pass,
        # matching "all statements with true guards execute within a step".
        assert fired == ["first", "second"]
        assert runtime.shared["x"] == 2

    def test_reports_only_fired_commands(self, runtime, rng):
        program = Program([
            GuardedCommand("never", flag_is("x", 99), set_flag("x", 1)),
            GuardedCommand("always", always, set_flag("y", 1)),
        ])
        assert program.execute(runtime, rng) == ["always"]

    def test_duplicate_names_rejected(self):
        command = GuardedCommand("dup", always, set_flag("x", 1))
        with pytest.raises(ConfigurationError):
            Program([command, command])

    def test_len_and_iter(self):
        commands = [GuardedCommand("a", always, set_flag("x", 1)),
                    GuardedCommand("b", always, set_flag("y", 1))]
        program = Program(commands)
        assert len(program) == 2
        assert [c.name for c in program] == ["a", "b"]

    def test_empty_program(self, runtime, rng):
        assert Program([]).execute(runtime, rng) == []
