"""Tests for the Frame dataclass."""

from repro.runtime.frames import Frame


class TestFrame:
    def test_get_present_value(self):
        frame = Frame(sender=1, payload={"x": 5})
        assert frame.get("x") == 5

    def test_get_default(self):
        frame = Frame(sender=1)
        assert frame.get("missing") is None
        assert frame.get("missing", 7) == 7

    def test_default_payload_empty(self):
        assert Frame(sender=1).payload == {}

    def test_frames_are_hash_frozen(self):
        frame = Frame(sender=1, payload={"x": 5})
        assert frame.sender == 1
