"""Tests for per-node runtime state: caches, expiry, views."""

import pytest

from repro.runtime.frames import Frame
from repro.runtime.node import NodeRuntime
from repro.util.errors import ConfigurationError


@pytest.fixture
def node():
    return NodeRuntime(node_id="p", tie_id=1, cache_timeout=3)


class TestIngest:
    def test_frame_becomes_cache_entry(self, node):
        node.ingest(Frame(sender="q", payload={"x": 5}), now=1)
        assert node.cached("q", "x") == 5
        assert node.known_neighbors() == {"q"}

    def test_own_frames_ignored(self, node):
        node.ingest(Frame(sender="p", payload={"x": 5}), now=1)
        assert node.known_neighbors() == set()

    def test_newer_frame_replaces_older(self, node):
        node.ingest(Frame(sender="q", payload={"x": 1}), now=1)
        node.ingest(Frame(sender="q", payload={"x": 2}), now=2)
        assert node.cached("q", "x") == 2

    def test_payload_copied(self, node):
        payload = {"x": 1}
        node.ingest(Frame(sender="q", payload=payload), now=1)
        payload["x"] = 99
        assert node.cached("q", "x") == 1


class TestExpiry:
    def test_fresh_entries_survive(self, node):
        node.ingest(Frame(sender="q"), now=5)
        node.expire_caches(now=7)
        assert "q" in node.known_neighbors()

    def test_stale_entries_evicted(self, node):
        node.ingest(Frame(sender="q"), now=5)
        node.expire_caches(now=8)  # age 3 >= timeout 3
        assert node.known_neighbors() == set()

    def test_refresh_resets_age(self, node):
        node.ingest(Frame(sender="q"), now=1)
        node.ingest(Frame(sender="q"), now=4)
        node.expire_caches(now=6)
        assert "q" in node.known_neighbors()

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            NodeRuntime(node_id="p", cache_timeout=0)


class TestViews:
    def test_cached_default(self, node):
        assert node.cached("missing", "x", default=42) == 42
        node.ingest(Frame(sender="q", payload={}), now=1)
        assert node.cached("q", "x", default=7) == 7

    def test_cached_all(self, node):
        node.ingest(Frame(sender="q", payload={"x": 1}), now=1)
        node.ingest(Frame(sender="r", payload={"x": 2}), now=1)
        assert node.cached_all("x") == {"q": 1, "r": 2}

    def test_two_hop_view_unions_reported_sets(self, node):
        node.ingest(Frame(sender="q",
                          payload={"neighbors": frozenset({"p", "r"})}),
                    now=1)
        node.ingest(Frame(sender="s", payload={"neighbors": frozenset()}),
                    now=1)
        view = node.two_hop_view()
        assert view == {"q", "r", "s"}  # p itself excluded

    def test_tie_id_defaults_to_node_id(self):
        runtime = NodeRuntime(node_id=9)
        assert runtime.tie_id == 9
