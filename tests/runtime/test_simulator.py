"""Tests for the synchronous step simulator."""

import pytest

from repro.graph.generators import line_topology, uniform_topology
from repro.protocols.base import Protocol
from repro.protocols.discovery import HelloProtocol
from repro.runtime.guarded import GuardedCommand, Program, always
from repro.runtime.simulator import StepSimulator
from repro.util.errors import ConfigurationError, ConvergenceError


class CountingProtocol(Protocol):
    """Counts executed steps per node; payload echoes the counter."""

    def initialize(self, runtime, rng):
        runtime.shared["count"] = 0

    def payload(self, runtime):
        return {"count": runtime.shared["count"]}

    def program(self):
        def bump(runtime, _rng):
            runtime.shared["count"] += 1
        return Program([GuardedCommand("bump", always, bump)])


class TestStepping:
    def test_step_advances_clock(self):
        sim = StepSimulator(line_topology(3), CountingProtocol(), rng=0)
        assert sim.now == 0
        sim.step()
        assert sim.now == 1

    def test_every_node_executes_once_per_step(self):
        sim = StepSimulator(line_topology(3), CountingProtocol(), rng=0)
        sim.run(4)
        assert all(value == 4 for value in sim.shared_map("count").values())

    def test_frames_deliver_previous_step_values(self):
        # A node's frame carries the payload computed *before* this step's
        # actions, so caches lag shared state by one step.
        sim = StepSimulator(line_topology(2), CountingProtocol(), rng=0)
        sim.step()  # broadcast count=0, then bump to 1
        assert sim.runtime(0).cached(1, "count") == 0
        sim.step()
        assert sim.runtime(0).cached(1, "count") == 1

    def test_run_returns_now(self):
        sim = StepSimulator(line_topology(2), CountingProtocol(), rng=0)
        assert sim.run(5) == 5

    def test_run_rejects_negative(self):
        sim = StepSimulator(line_topology(2), CountingProtocol(), rng=0)
        with pytest.raises(ConfigurationError):
            sim.run(-1)

    def test_same_seed_same_trace(self):
        topo = uniform_topology(20, 0.3, rng=1)
        a = StepSimulator(topo, HelloProtocol(), rng=42)
        b = StepSimulator(topo, HelloProtocol(), rng=42)
        a.run(3)
        b.run(3)
        assert a.shared_map("neighbors") == b.shared_map("neighbors")


class TestRunUntil:
    def test_stops_at_predicate(self):
        sim = StepSimulator(line_topology(2), CountingProtocol(), rng=0)
        reached = sim.run_until(
            lambda s: all(v >= 3 for v in s.shared_map("count").values()),
            max_steps=10)
        assert reached == 3

    def test_settle_window(self):
        sim = StepSimulator(line_topology(2), CountingProtocol(), rng=0)
        reached = sim.run_until(
            lambda s: s.now >= 2, max_steps=10, settle=3)
        assert reached == 2
        assert sim.now == 4  # 3 consecutive satisfied steps: 2, 3, 4

    def test_budget_exhaustion_raises(self):
        sim = StepSimulator(line_topology(2), CountingProtocol(), rng=0)
        with pytest.raises(ConvergenceError):
            sim.run_until(lambda s: False, max_steps=5)

    def test_bad_budget_rejected(self):
        sim = StepSimulator(line_topology(2), CountingProtocol(), rng=0)
        with pytest.raises(ConfigurationError):
            sim.run_until(lambda s: True, max_steps=0)


class TestTopologyReplacement:
    def test_replace_preserves_runtimes(self):
        topo = line_topology(3)
        sim = StepSimulator(topo, CountingProtocol(), rng=0)
        sim.run(2)
        counts = sim.shared_map("count")
        sim.replace_topology(line_topology(3))
        assert sim.shared_map("count") == counts

    def test_replace_requires_same_nodes(self):
        sim = StepSimulator(line_topology(3), CountingProtocol(), rng=0)
        with pytest.raises(ConfigurationError):
            sim.replace_topology(line_topology(4))

    def test_new_edges_take_effect(self):
        from repro.graph.generators import Topology
        from repro.graph.graph import Graph
        disconnected = Topology(Graph(nodes=[0, 1]))
        sim = StepSimulator(disconnected, HelloProtocol(), rng=0,
                            cache_timeout=2)
        sim.run(2)
        assert sim.runtime(0).known_neighbors() == set()
        sim.replace_topology(Topology(Graph(edges=[(0, 1)])))
        sim.run(2)
        assert sim.runtime(0).known_neighbors() == {1}

    def test_removed_edges_fade_after_timeout(self):
        from repro.graph.generators import Topology
        from repro.graph.graph import Graph
        sim = StepSimulator(Topology(Graph(edges=[(0, 1)])),
                            HelloProtocol(), rng=0, cache_timeout=2)
        sim.run(2)
        assert sim.runtime(0).known_neighbors() == {1}
        sim.replace_topology(Topology(Graph(nodes=[0, 1])))
        sim.run(3)
        assert sim.runtime(0).known_neighbors() == set()

    def test_activation_order_cached_and_invalidated(self):
        from repro.graph.generators import Topology
        from repro.graph.graph import Graph
        sim = StepSimulator(line_topology(3), CountingProtocol(), rng=0)
        sim.step()
        assert sim._activation_order == [0, 1, 2]
        cached = sim._activation_order
        sim.step()
        assert sim._activation_order is cached  # no per-step re-sort
        # New tie identifiers must reorder activations on the next step.
        reordered = Topology(Graph(nodes=[0, 1, 2],
                                   edges=[(0, 1), (1, 2)]),
                             ids={0: 9, 1: 5, 2: 1})
        sim.replace_topology(reordered)
        assert sim._activation_order is None
        sim.step()
        assert sim._activation_order == [2, 1, 0]


class TestCorruption:
    def test_corrupt_all_nodes(self):
        sim = StepSimulator(line_topology(3), CountingProtocol(), rng=0)
        sim.corrupt(lambda runtime, _rng: runtime.shared.update(count=-5))
        assert all(v == -5 for v in sim.shared_map("count").values())

    def test_corrupt_subset(self):
        sim = StepSimulator(line_topology(3), CountingProtocol(), rng=0)
        sim.corrupt(lambda runtime, _rng: runtime.shared.update(count=-5),
                    nodes=[1])
        counts = sim.shared_map("count")
        assert counts[1] == -5
        assert counts[0] == 0
