"""Tests for execution daemons and self-stabilization under asynchrony."""

import numpy as np
import pytest

from repro.graph.generators import uniform_topology
from repro.protocols.stack import standard_stack
from repro.runtime.daemon import (
    CentralDaemon,
    RandomSubsetDaemon,
    SynchronousDaemon,
)
from repro.runtime.simulator import StepSimulator
from repro.stabilization.monitor import steps_to_legitimacy
from repro.stabilization.predicates import make_stack_predicate
from repro.util.errors import ConfigurationError


class TestDaemonSelection:
    def test_synchronous_selects_everyone(self, rng):
        daemon = SynchronousDaemon()
        assert daemon.select([1, 2, 3], rng) == {1, 2, 3}

    def test_central_selects_exactly_one(self, rng):
        daemon = CentralDaemon()
        for _ in range(10):
            assert len(daemon.select([1, 2, 3, 4], rng)) == 1

    def test_central_on_empty_set(self, rng):
        assert CentralDaemon().select([], rng) == set()

    def test_random_subset_rate(self):
        rng = np.random.default_rng(0)
        daemon = RandomSubsetDaemon(0.3)
        total = sum(len(daemon.select(range(100), rng)) for _ in range(50))
        assert 1000 <= total <= 2000  # ~1500 expected

    def test_random_subset_probability_validated(self):
        with pytest.raises(ConfigurationError):
            RandomSubsetDaemon(0.0)
        with pytest.raises(ConfigurationError):
            RandomSubsetDaemon(1.5)

    def test_full_probability_equals_synchronous(self, rng):
        daemon = RandomSubsetDaemon(1.0)
        assert daemon.select([1, 2], rng) == {1, 2}


class TestConvergenceUnderAsynchrony:
    """Self-stabilization must survive any (fair) daemon."""

    def test_random_subset_daemon_converges(self):
        topo = uniform_topology(30, 0.28, rng=1)
        sim = StepSimulator(topo, standard_stack(topology=topo), rng=2,
                            daemon=RandomSubsetDaemon(0.5),
                            cache_timeout=30)
        report = steps_to_legitimacy(sim, make_stack_predicate(), 600)
        assert report.converged

    def test_sparser_activation_is_slower(self):
        def steps(probability, seed):
            topo = uniform_topology(25, 0.3, rng=seed)
            sim = StepSimulator(topo, standard_stack(topology=topo),
                                rng=seed,
                                daemon=RandomSubsetDaemon(probability),
                                cache_timeout=40)
            report = steps_to_legitimacy(sim, make_stack_predicate(), 1500)
            assert report.converged
            return report.steps

        dense = sum(steps(0.9, s) for s in range(3))
        sparse = sum(steps(0.2, s) for s in range(3))
        assert sparse > dense

    def test_central_daemon_converges_on_tiny_network(self):
        # One activation per step: convergence takes O(n * height) steps.
        topo = uniform_topology(8, 0.6, rng=3)
        sim = StepSimulator(topo, standard_stack(topology=topo), rng=4,
                            daemon=CentralDaemon(), cache_timeout=200)
        report = steps_to_legitimacy(sim, make_stack_predicate(), 2000)
        assert report.converged
