"""Tests for protocol composition and the standard stack builder."""

import pytest

from repro.graph.generators import line_topology
from repro.protocols.base import Protocol, ProtocolStack
from repro.protocols.discovery import HelloProtocol
from repro.protocols.stack import standard_stack
from repro.runtime.guarded import GuardedCommand, Program, always
from repro.runtime.node import NodeRuntime
from repro.util.errors import ConfigurationError


class StubProtocol(Protocol):
    def __init__(self, key):
        self.key = key

    def initialize(self, runtime, rng):
        runtime.shared[self.key] = 0

    def payload(self, runtime):
        return {self.key: runtime.shared[self.key]}

    def program(self):
        def bump(runtime, _rng):
            runtime.shared[self.key] += 1
        return Program([GuardedCommand(f"bump-{self.key}", always, bump)])


class TestProtocolStack:
    def test_payloads_merge(self):
        stack = ProtocolStack([StubProtocol("a"), StubProtocol("b")])
        runtime = NodeRuntime(node_id=0)
        stack.initialize(runtime, None)
        assert stack.payload(runtime) == {"a": 0, "b": 0}

    def test_payload_collision_rejected(self):
        stack = ProtocolStack([StubProtocol("a"), StubProtocol("a")])
        runtime = NodeRuntime(node_id=0)
        stack.initialize(runtime, None)
        with pytest.raises(ConfigurationError):
            stack.payload(runtime)

    def test_programs_concatenate_in_order(self):
        stack = ProtocolStack([StubProtocol("a"), StubProtocol("b")])
        names = [c.name for c in stack.program()]
        assert names == ["bump-a", "bump-b"]

    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolStack([])

    def test_base_protocol_defaults(self):
        protocol = Protocol()
        runtime = NodeRuntime(node_id=0)
        protocol.initialize(runtime, None)
        assert protocol.payload(runtime) == {}
        assert len(protocol.program()) == 0


class TestStandardStack:
    def test_layers_with_dag(self):
        topo = line_topology(3)
        stack = standard_stack(topology=topo)
        names = [c.name for c in stack.program()]
        assert names == ["hello:update-neighborhood", "naming:N1",
                         "clustering:R1-density", "clustering:R2-head"]

    def test_layers_without_dag(self):
        stack = standard_stack(use_dag=False)
        names = [c.name for c in stack.program()]
        assert "naming:N1" not in names

    def test_namespace_sizing_needs_topology(self):
        with pytest.raises(ConfigurationError):
            standard_stack(use_dag=True)

    def test_explicit_namespace_size(self):
        stack = standard_stack(namespace=32)
        naming_layer = stack.layers[1]
        assert len(naming_layer.namespace) == 32

    def test_hello_always_first(self):
        topo = line_topology(3)
        stack = standard_stack(topology=topo, fusion=True)
        assert isinstance(stack.layers[0], HelloProtocol)
