"""Tests for the hello/discovery layer."""

from repro.graph.generators import line_topology, star_topology
from repro.protocols.discovery import HelloProtocol
from repro.runtime.simulator import StepSimulator


class TestHelloProtocol:
    def test_neighbors_known_after_one_step(self):
        topo = star_topology(4)
        sim = StepSimulator(topo, HelloProtocol(), rng=0)
        sim.step()
        assert sim.runtime(0).known_neighbors() == {1, 2, 3, 4}
        assert sim.runtime(1).known_neighbors() == {0}

    def test_shared_neighbors_lag_one_step(self):
        topo = line_topology(2)
        sim = StepSimulator(topo, HelloProtocol(), rng=0)
        sim.step()
        # After step 1 the shared variable reflects the fresh cache...
        assert sim.runtime(0).shared["neighbors"] == frozenset({1})
        # ...but what 1 has *cached about 0* is still the pre-step value.
        assert sim.runtime(1).cached(0, "neighbors") == frozenset()

    def test_two_hop_view_after_two_steps(self):
        topo = line_topology(5)
        sim = StepSimulator(topo, HelloProtocol(), rng=0)
        sim.run(2)
        assert sim.runtime(2).two_hop_view() == {0, 1, 3, 4}

    def test_tie_id_carried_in_frames(self):
        topo = line_topology(2)
        sim = StepSimulator(topo, HelloProtocol(), rng=0)
        sim.step()
        assert sim.runtime(0).cached(1, "tie_id") == 1

    def test_initialize_sets_empty_neighborhood(self):
        topo = line_topology(2)
        sim = StepSimulator(topo, HelloProtocol(), rng=0)
        assert sim.runtime(0).shared["neighbors"] == frozenset()
