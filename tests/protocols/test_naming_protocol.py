"""Tests for the distributed DAG naming protocol."""

import pytest

from repro.graph.generators import complete_topology, line_topology, \
    uniform_topology
from repro.naming.namespace import NameSpace
from repro.naming.renaming import is_locally_unique
from repro.protocols.base import ProtocolStack
from repro.protocols.discovery import HelloProtocol
from repro.protocols.naming import DagNamingProtocol
from repro.runtime.simulator import StepSimulator
from repro.util.errors import ConfigurationError


def naming_stack(namespace, variant="polite"):
    return ProtocolStack([HelloProtocol(),
                          DagNamingProtocol(namespace, variant=variant)])


class TestConstruction:
    def test_namespace_coercion(self):
        protocol = DagNamingProtocol(16)
        assert isinstance(protocol.namespace, NameSpace)
        assert len(protocol.namespace) == 16

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            DagNamingProtocol(16, variant="impolite")


@pytest.mark.parametrize("variant", ["randomized", "polite"])
class TestConvergence:
    def test_local_uniqueness_reached(self, variant):
        topo = uniform_topology(40, 0.25, rng=2)
        size = max(topo.graph.max_degree() ** 2, 8)
        sim = StepSimulator(topo, naming_stack(size, variant), rng=5)
        sim.run(15)
        ids = sim.shared_map("dag_id")
        assert is_locally_unique(topo.graph, ids)
        assert all(name in NameSpace(size) for name in ids.values())

    def test_recovers_from_duplicate_names(self, variant):
        topo = complete_topology(5)
        sim = StepSimulator(topo, naming_stack(100, variant), rng=6)
        sim.run(5)
        sim.corrupt(lambda runtime, _rng: runtime.shared.update(dag_id=0))
        sim.run(25)
        assert is_locally_unique(topo.graph, sim.shared_map("dag_id"))

    def test_recovers_from_out_of_space_names(self, variant):
        topo = line_topology(4)
        sim = StepSimulator(topo, naming_stack(9, variant), rng=7)
        sim.corrupt(lambda runtime, _rng: runtime.shared.update(dag_id=10**6))
        sim.run(15)
        ids = sim.shared_map("dag_id")
        assert all(name in NameSpace(9) for name in ids.values())


class TestPoliteSemantics:
    def test_larger_tie_id_keeps_name(self):
        topo = line_topology(2)
        sim = StepSimulator(topo, naming_stack(50, "polite"), rng=8)
        sim.corrupt(lambda runtime, _rng: runtime.shared.update(dag_id=3))
        sim.run(6)
        ids = sim.shared_map("dag_id")
        assert ids[1] == 3       # larger normal id never re-draws
        assert ids[0] != 3

    def test_stable_names_never_change(self):
        topo = line_topology(3)
        sim = StepSimulator(topo, naming_stack(50, "polite"), rng=9)
        sim.run(8)
        before = sim.shared_map("dag_id")
        sim.run(8)
        assert sim.shared_map("dag_id") == before
