"""Tests for the distributed density clustering protocol (R1/R2)."""

from fractions import Fraction

import pytest

from repro.clustering.density import all_densities
from repro.graph.generators import line_topology, \
    star_topology, uniform_topology
from repro.protocols.clustering import DensityClusteringProtocol
from repro.protocols.stack import claimed_heads, extract_clustering, \
    standard_stack
from repro.runtime.simulator import StepSimulator
from repro.util.errors import ConfigurationError


class TestConfiguration:
    def test_unknown_order_rejected(self):
        with pytest.raises(ConfigurationError):
            DensityClusteringProtocol(order="wrong")

    def test_summary_only_sent_with_fusion(self):
        from repro.runtime.node import NodeRuntime
        runtime = NodeRuntime(node_id=0)
        plain = DensityClusteringProtocol()
        plain.initialize(runtime, None)
        assert "summary" not in plain.payload(runtime)
        fused = DensityClusteringProtocol(fusion=True)
        assert "summary" in fused.payload(runtime)


class TestR1Density:
    def test_densities_match_truth_after_two_steps(self, fig1):
        sim = StepSimulator(fig1, standard_stack(use_dag=False), rng=0)
        sim.run(2)
        truth = all_densities(fig1.graph, exact=True)
        shared = sim.shared_map("density")
        assert shared == truth

    def test_isolated_node_density_zero(self):
        from repro.graph.generators import Topology
        from repro.graph.graph import Graph
        topo = Topology(Graph(nodes=[1]))
        sim = StepSimulator(topo, standard_stack(use_dag=False), rng=0)
        sim.run(2)
        assert sim.shared_map("density")[1] == Fraction(0)

    def test_densities_are_exact_fractions(self, fig1):
        sim = StepSimulator(fig1, standard_stack(use_dag=False), rng=0)
        sim.run(3)
        assert all(isinstance(value, Fraction)
                   for value in sim.shared_map("density").values())


class TestR2Heads:
    def test_figure1_heads(self, fig1):
        sim = StepSimulator(fig1, standard_stack(use_dag=False), rng=0)
        sim.run(10)
        assert claimed_heads(sim) == {"h", "j"}

    def test_head_values_propagate_down_trees(self, fig1):
        sim = StepSimulator(fig1, standard_stack(use_dag=False), rng=0)
        sim.run(10)
        heads = sim.shared_map("head")
        assert heads["c"] == "h"  # two parent-hops away from its head

    def test_star_center_becomes_head(self):
        topo = star_topology(5)
        sim = StepSimulator(topo, standard_stack(use_dag=False), rng=0)
        sim.run(6)
        assert claimed_heads(sim) == {0}

    def test_stable_state_stays_stable(self, fig1):
        sim = StepSimulator(fig1, standard_stack(use_dag=False), rng=0)
        sim.run(10)
        parents = sim.shared_map("parent")
        sim.run(10)
        assert sim.shared_map("parent") == parents


class TestExtractClustering:
    def test_extracts_valid_clustering(self, fig1):
        sim = StepSimulator(fig1, standard_stack(use_dag=False), rng=0)
        sim.run(10)
        clustering = extract_clustering(sim)
        clustering.check_invariants()
        assert clustering.heads == {"h", "j"}

    def test_unset_parents_become_self(self):
        topo = line_topology(3)
        sim = StepSimulator(topo, standard_stack(use_dag=False), rng=0)
        # No steps run: parents all None -> treated as self-heads.
        clustering = extract_clustering(sim)
        assert clustering.heads == {0, 1, 2}

    def test_dag_ids_attached_when_present(self):
        topo = line_topology(4)
        sim = StepSimulator(topo, standard_stack(topology=topo), rng=0)
        sim.run(12)
        clustering = extract_clustering(sim)
        assert clustering.dag_ids is not None
        assert set(clustering.dag_ids) == set(topo.graph.nodes)


class TestFusionProtocol:
    def test_fusion_heads_three_hops_apart(self):
        for seed in range(4):
            topo = uniform_topology(50, 0.22, rng=seed + 20)
            sim = StepSimulator(topo,
                                standard_stack(topology=topo, fusion=True),
                                rng=seed)
            sim.run(40)
            clustering = extract_clustering(sim, fusion=True)
            clustering.check_fusion_separation()

    def test_fusion_reduces_or_keeps_cluster_count(self):
        topo = uniform_topology(50, 0.22, rng=31)
        plain_sim = StepSimulator(topo, standard_stack(topology=topo), rng=1)
        fused_sim = StepSimulator(topo,
                                  standard_stack(topology=topo, fusion=True),
                                  rng=1)
        plain_sim.run(40)
        fused_sim.run(40)
        plain = extract_clustering(plain_sim)
        fused = extract_clustering(fused_sim, fusion=True)
        assert fused.cluster_count <= plain.cluster_count


class TestIncumbentProtocol:
    def test_incumbent_head_resists_tie_challenger(self):
        # Line 0-1: equal densities; with the incumbent order, an
        # *established* head (advertising both its headship and its
        # density) stays head even though node 0 has the smaller id.
        topo = line_topology(2)
        sim = StepSimulator(topo,
                            standard_stack(use_dag=False, order="incumbent"),
                            rng=0)
        sim.runtime(1).shared["head"] = 1
        sim.runtime(1).shared["parent"] = 1
        sim.runtime(1).shared["density"] = Fraction(1)
        sim.run(10)
        assert claimed_heads(sim) == {1}

    def test_basic_order_dethrones_incumbent_on_tie(self):
        # Same setup under the basic order: the smaller id must win.
        topo = line_topology(2)
        sim = StepSimulator(topo, standard_stack(use_dag=False), rng=0)
        sim.runtime(1).shared["head"] = 1
        sim.runtime(1).shared["parent"] = 1
        sim.runtime(1).shared["density"] = Fraction(1)
        sim.run(10)
        assert claimed_heads(sim) == {0}
