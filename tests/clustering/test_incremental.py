"""IncrementalElection vs the scratch oracle, window by window."""

import numpy as np
import pytest

from repro.clustering.incremental import IncrementalElection
from repro.clustering.oracle import compute_clustering
from repro.clustering.order import BasicOrder
from repro.graph.dynamic import DynamicTopology
from repro.graph.generators import star_topology, uniform_topology


def assert_same_clustering(fast, oracle):
    assert fast.parents == oracle.parents
    assert fast.heads == oracle.heads
    assert fast.head_of == oracle.head_of
    assert fast.densities == oracle.densities
    assert fast.order_name == oracle.order_name
    assert fast.fusion == oracle.fusion


def drive(seed, order, fusion, windows=6, count=60, radius=0.18,
          use_dag=True, step=0.02):
    """Run a window sequence through the engine and the oracle."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 1, size=(count, 2))
    dynamic = DynamicTopology(positions, radius)
    engine = IncrementalElection(order=order, fusion=fusion)
    tie_ids = dynamic.topology.ids
    dag_ids = ({node: int(rng.integers(10 ** 6)) for node in dynamic.graph}
               if use_dag else None)
    previous_fast = None
    previous_oracle = None
    density_changed = None
    graph_changed = True
    for window in range(windows):
        fast = engine.update(dynamic.graph, dynamic.densities,
                             tie_ids=tie_ids, dag_ids=dag_ids,
                             previous=previous_fast,
                             density_changed=density_changed,
                             graph_changed=graph_changed, dag_changed=False)
        oracle = compute_clustering(dynamic.graph, tie_ids=tie_ids,
                                    dag_ids=dag_ids, order=order,
                                    fusion=fusion, previous=previous_oracle,
                                    densities=dynamic.densities)
        assert_same_clustering(fast, oracle)
        previous_fast, previous_oracle = fast, oracle
        positions = np.clip(
            positions + rng.uniform(-step, step, size=positions.shape), 0, 1)
        update = dynamic.move(positions)
        density_changed = update.density_changed
        graph_changed = bool(update.delta)


@pytest.mark.parametrize("order,fusion", [
    ("basic", False), ("basic", True),
    ("incumbent", False), ("incumbent", True),
])
@pytest.mark.parametrize("use_dag", [False, True])
def test_engine_matches_oracle_across_windows(order, fusion, use_dag):
    drive(seed=13, order=order, fusion=fusion, use_dag=use_dag)


def test_engine_matches_oracle_on_sparse_and_dense_extremes():
    drive(seed=14, order="incumbent", fusion=True, radius=0.05)  # fragmented
    drive(seed=15, order="incumbent", fusion=True, radius=0.6)   # near-complete


def test_unchanged_window_reuses_previous_clustering():
    rng = np.random.default_rng(16)
    positions = rng.uniform(0, 1, size=(40, 2))
    dynamic = DynamicTopology(positions, 0.2)
    engine = IncrementalElection(order="incumbent", fusion=True)
    first = engine.update(dynamic.graph, dynamic.densities,
                          tie_ids=dynamic.topology.ids, previous=None)
    # Window 2 recomputes: the incumbent flags flip from "no incumbents"
    # to first.heads, which changes the keys.
    second = engine.update(dynamic.graph, dynamic.densities,
                           tie_ids=dynamic.topology.ids, previous=first,
                           density_changed=frozenset(), graph_changed=False,
                           dag_changed=False)
    assert second is not first
    # Window 3 sees identical incumbents, keys, and graph: the previous
    # clustering object is reused as-is.
    third = engine.update(dynamic.graph, dynamic.densities,
                          tie_ids=dynamic.topology.ids, previous=second,
                          density_changed=frozenset(), graph_changed=False,
                          dag_changed=False)
    assert third is second


def test_untied_incumbent_flips_reuse_previous_clustering():
    """Empty delta + incumbent flips only on density-untied nodes: the
    flips cannot reorder the primary-keyed lexsort, so the engine skips
    re-ranking and returns the previous clustering object as-is."""
    rng = np.random.default_rng(27)
    positions = rng.uniform(0, 1, size=(40, 2))
    dynamic = DynamicTopology(positions, 0.2)
    engine = IncrementalElection(order="incumbent", fusion=True)
    tie_ids = dynamic.topology.ids
    first = engine.update(dynamic.graph, dynamic.densities, tie_ids=tie_ids,
                          previous=None)
    tied = engine._density_tied()
    ids = dynamic.graph.to_csr().ids
    untied = [node for index, node in enumerate(ids) if not tied[index]]
    assert untied, "seed must yield at least one density-untied node"
    flipped = frozenset(untied[:2])
    second = engine.update(dynamic.graph, dynamic.densities, tie_ids=tie_ids,
                           previous=flipped, density_changed=frozenset(),
                           graph_changed=False, dag_changed=False)
    assert second is first
    oracle = compute_clustering(dynamic.graph, tie_ids=tie_ids,
                                order="incumbent", fusion=True,
                                previous=flipped,
                                densities=dynamic.densities)
    assert_same_clustering(second, oracle)


def test_tied_incumbent_flips_force_recompute():
    """On a ring every density ties, so an incumbent flip can reorder
    the election and the skip must not engage."""
    from repro.clustering.density import all_densities
    from repro.graph.generators import ring_topology

    topo = ring_topology(6)
    densities = all_densities(topo.graph, exact=True)
    engine = IncrementalElection(order="incumbent", fusion=False)
    first = engine.update(topo.graph, densities, tie_ids=topo.ids,
                          previous=None)
    assert engine._density_tied().all()
    flipped = frozenset({topo.ids[3]})
    second = engine.update(topo.graph, densities, tie_ids=topo.ids,
                           previous=flipped, density_changed=frozenset(),
                           graph_changed=False, dag_changed=False)
    assert second is not first
    oracle = compute_clustering(topo.graph, tie_ids=topo.ids,
                                order="incumbent", previous=flipped,
                                densities=densities)
    assert_same_clustering(second, oracle)


def test_stationary_trace_matches_oracle():
    """step=0 makes every window an empty delta while incumbency still
    settles over the first windows -- the untied-flip skip engages and
    must stay bit-identical to the scratch oracle."""
    drive(seed=29, order="incumbent", fusion=True, step=0.0)
    drive(seed=30, order="incumbent", fusion=False, step=0.0)


def test_head_churn_defeats_reuse_for_incumbent_order():
    rng = np.random.default_rng(17)
    positions = rng.uniform(0, 1, size=(40, 2))
    dynamic = DynamicTopology(positions, 0.2)
    engine = IncrementalElection(order="incumbent", fusion=False)
    tie_ids = dynamic.topology.ids
    first = engine.update(dynamic.graph, dynamic.densities, tie_ids=tie_ids,
                          previous=None)
    moved = engine.update(dynamic.graph, dynamic.densities, tie_ids=tie_ids,
                          previous=first, density_changed=frozenset(),
                          graph_changed=False, dag_changed=False)
    assert moved is not first
    oracle = compute_clustering(dynamic.graph, tie_ids=tie_ids,
                                order="incumbent", previous=first,
                                densities=dynamic.densities)
    assert_same_clustering(moved, oracle)


def test_population_change_reseeds():
    rng = np.random.default_rng(18)
    positions = rng.uniform(0, 1, size=(30, 2))
    dynamic = DynamicTopology(positions, 0.25)
    engine = IncrementalElection(order="basic")
    first = engine.update(dynamic.graph, dynamic.densities,
                          tie_ids=dynamic.topology.ids, previous=None)
    update = dynamic.apply_churn(departed=[4], arrivals=[(30, (0.5, 0.5))])
    tie_ids = update.topology.ids
    fast = engine.update(dynamic.graph, dynamic.densities, tie_ids=tie_ids,
                         previous=first,
                         density_changed=update.density_changed,
                         graph_changed=True, dag_changed=False)
    oracle = compute_clustering(dynamic.graph, tie_ids=tie_ids,
                                order="basic", previous=first,
                                densities=dynamic.densities)
    assert_same_clustering(fast, oracle)


def test_custom_order_falls_back_to_oracle():
    class ShiftedOrder(BasicOrder):
        name = "shifted"

        def key(self, view):
            return (view.density, -view.tie_id)

    topo = uniform_topology(25, 0.3, rng=19)
    from repro.clustering.density import all_densities
    densities = all_densities(topo.graph, exact=True)
    engine = IncrementalElection(order=ShiftedOrder())
    fast = engine.update(topo.graph, densities, tie_ids=topo.ids,
                         previous=None)
    oracle = compute_clustering(topo.graph, tie_ids=topo.ids,
                                order=ShiftedOrder(), densities=densities)
    assert_same_clustering(fast, oracle)


def test_degenerate_shapes():
    from repro.clustering.density import all_densities
    for topo in (star_topology(4), uniform_topology(1, 0.2, rng=20),
                 uniform_topology(12, 0.01, rng=21)):  # isolated-heavy
        densities = all_densities(topo.graph, exact=True)
        engine = IncrementalElection(order="basic")
        fast = engine.update(topo.graph, densities, tie_ids=topo.ids,
                             previous=None)
        oracle = compute_clustering(topo.graph, tie_ids=topo.ids,
                                    densities=densities)
        assert_same_clustering(fast, oracle)


def test_float_rank_limit_falls_back(monkeypatch):
    import repro.clustering.incremental as incr
    monkeypatch.setattr(incr, "FLOAT_RANK_LIMIT", 5)
    topo = uniform_topology(12, 0.3, rng=22)
    from repro.clustering.density import all_densities
    densities = all_densities(topo.graph, exact=True)
    engine = IncrementalElection(order="incumbent", fusion=True)
    fast = engine.update(topo.graph, densities, tie_ids=topo.ids,
                         previous=None)
    oracle = compute_clustering(topo.graph, tie_ids=topo.ids,
                                order="incumbent", fusion=True,
                                densities=densities)
    assert_same_clustering(fast, oracle)


def test_previous_as_plain_head_set():
    topo = uniform_topology(30, 0.25, rng=23)
    from repro.clustering.density import all_densities
    densities = all_densities(topo.graph, exact=True)
    heads = {0, 5, 9}
    engine = IncrementalElection(order="incumbent")
    fast = engine.update(topo.graph, densities, tie_ids=topo.ids,
                         previous=frozenset(heads))
    oracle = compute_clustering(topo.graph, tie_ids=topo.ids,
                                order="incumbent", previous=frozenset(heads),
                                densities=densities)
    assert_same_clustering(fast, oracle)
