"""Tests for the precedence orders of Section 4."""

from fractions import Fraction

import pytest

from repro.clustering.order import (
    BasicOrder,
    IncumbentOrder,
    NodeView,
    make_order,
)
from repro.util.errors import ConfigurationError


def view(node="p", density=1, tie_id=0, dag_id=None, is_head=False):
    return NodeView(node=node, density=Fraction(density), tie_id=tie_id,
                    dag_id=dag_id, is_head=is_head)


class TestBasicOrder:
    def test_higher_density_wins(self):
        order = BasicOrder()
        assert order.precedes(view(density=1, tie_id=0),
                              view(density=2, tie_id=1))
        assert not order.precedes(view(density=2, tie_id=0),
                                  view(density=1, tie_id=1))

    def test_density_tie_smaller_id_wins(self):
        # p ≺ q iff d equal and Id_q < Id_p.
        order = BasicOrder()
        p = view(node="p", density=1, tie_id=5)
        q = view(node="q", density=1, tie_id=3)
        assert order.precedes(p, q)
        assert not order.precedes(q, p)

    def test_dag_id_dominates_tie_id(self):
        order = BasicOrder()
        p = view(node="p", density=1, tie_id=1, dag_id=7)
        q = view(node="q", density=1, tie_id=9, dag_id=2)
        # q has the smaller DAG name, so q wins despite its larger tie id.
        assert order.precedes(p, q)

    def test_tie_id_breaks_equal_dag_ids(self):
        order = BasicOrder()
        p = view(node="p", density=1, tie_id=4, dag_id=2)
        q = view(node="q", density=1, tie_id=2, dag_id=2)
        assert order.precedes(p, q)

    def test_identical_keys_raise(self):
        order = BasicOrder()
        p = view(node="p", density=1, tie_id=1)
        q = view(node="q", density=1, tie_id=1)
        with pytest.raises(ConfigurationError):
            order.precedes(p, q)

    def test_key_is_strictly_monotone_in_density(self):
        order = BasicOrder()
        assert order.key(view(density=2)) > order.key(view(density=1))

    def test_fraction_densities_compare_exactly(self):
        order = BasicOrder()
        p = view(density=Fraction(5, 4), tie_id=1)
        q = view(density=Fraction(10, 8), tie_id=0)
        # Equal densities as fractions: falls through to identifiers.
        assert order.precedes(p, q)


class TestIncumbentOrder:
    def test_density_still_dominates(self):
        order = IncumbentOrder()
        incumbent = view(node="p", density=1, tie_id=0, is_head=True)
        denser = view(node="q", density=2, tie_id=1, is_head=False)
        assert order.precedes(incumbent, denser)

    def test_incumbent_wins_density_tie(self):
        order = IncumbentOrder()
        incumbent = view(node="p", density=1, tie_id=9, is_head=True)
        challenger = view(node="q", density=1, tie_id=0, is_head=False)
        # Despite the challenger's smaller id, the incumbent wins.
        assert order.precedes(challenger, incumbent)

    def test_two_incumbents_fall_back_to_ids(self):
        order = IncumbentOrder()
        p = view(node="p", density=1, tie_id=5, is_head=True)
        q = view(node="q", density=1, tie_id=3, is_head=True)
        assert order.precedes(p, q)

    def test_two_non_heads_match_basic(self):
        basic, incumbent = BasicOrder(), IncumbentOrder()
        p = view(node="p", density=1, tie_id=5)
        q = view(node="q", density=1, tie_id=3)
        assert basic.precedes(p, q) == incumbent.precedes(p, q)


class TestMakeOrder:
    def test_lookup(self):
        assert isinstance(make_order("basic"), BasicOrder)
        assert isinstance(make_order("incumbent"), IncumbentOrder)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_order("lexicographic")
