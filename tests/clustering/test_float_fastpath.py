"""The float density fast path: exactness, isolation, tie refinement."""

from fractions import Fraction

import numpy as np
import pytest

import repro.clustering.incremental as incremental
from repro.clustering.density import (
    ISOLATED_DENSITY,
    all_densities,
    all_densities_reference,
    density_float_image,
    float_tie_mask,
)
from repro.clustering.incremental import IncrementalElection
from repro.clustering.oracle import compute_clustering
from repro.graph.graph import Graph


class _DictBacked:
    """A minimal dict-backend graph view (no ``to_csr``)."""

    def __init__(self, graph):
        self._graph = graph

    def __iter__(self):
        return iter(self._graph)

    @property
    def edges(self):
        return self._graph.edges

    def neighbors(self, node):
        return self._graph.neighbors(node)

    def degree(self, node):
        return self._graph.degree(node)


def complete_graph(n):
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def sweep_graphs():
    lone = Graph(nodes=[0])
    isolates = Graph(nodes=range(5))
    mixed = Graph(nodes=range(6))
    mixed.add_edges_from([(0, 1), (1, 2), (0, 2)])  # 3, 4, 5 isolated
    return [lone, isolates, mixed, complete_graph(5), Graph()]


class TestIsolatedConsistency:
    @pytest.mark.parametrize("exact", [False, True])
    def test_csr_and_dict_backends_agree_on_the_sweep(self, exact):
        for graph in sweep_graphs():
            via_csr = all_densities(graph, exact=exact)
            via_dict = all_densities(_DictBacked(graph), exact=exact)
            reference = all_densities_reference(graph, exact=exact)
            assert via_csr == via_dict == reference
            for node in graph:
                if graph.degree(node) == 0:
                    expected = Fraction(0) if exact else ISOLATED_DENSITY
                    assert via_csr[node] == expected
                    assert type(via_csr[node]) is type(expected)

    def test_isolated_rows_pinned_in_the_kernel(self):
        values = density_float_image([0, 3, 0], [0, 2, 0])
        assert values[0] == ISOLATED_DENSITY
        assert values[2] == ISOLATED_DENSITY
        assert values[1] == (3 + 2) / 3


class TestFloatTieMask:
    def test_marks_exactly_the_duplicated_values(self):
        mask = float_tie_mask([1.0, 2.0, 1.0, 3.0, 2.0, 2.0])
        assert mask.tolist() == [True, True, True, False, True, True]

    def test_all_distinct_means_no_ties(self):
        assert not float_tie_mask([0.5, 1.5, 2.5]).any()

    def test_empty(self):
        assert float_tie_mask([]).size == 0


def drive_with_limit(monkeypatch, limit, order="incumbent", fusion=True,
                     seed=7, count=220):
    """One random deployment, engine vs oracle, with a forced limit."""
    monkeypatch.setattr(incremental, "FLOAT_RANK_LIMIT", limit)
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 1, size=(count, 2))
    from repro.graph.geometry import unit_disk_graph

    graph, _ = unit_disk_graph(positions, 0.15)
    densities = all_densities(graph, exact=True)
    tie_ids = {node: node for node in graph}
    engine = IncrementalElection(order=order, fusion=fusion)
    fast = engine.update(graph, densities, tie_ids=tie_ids)
    oracle = compute_clustering(graph, tie_ids=tie_ids, order=order,
                                fusion=fusion, densities=densities)
    assert fast.parents == oracle.parents
    assert fast.heads == oracle.heads


class TestTieRefinement:
    @pytest.mark.parametrize("order,fusion", [
        ("basic", False), ("basic", True),
        ("incumbent", False), ("incumbent", True),
    ])
    def test_refined_ranking_matches_oracle(self, monkeypatch, order, fusion):
        # Limit 10 forces the refinement column on a graph full of real
        # float ties (equal Fractions); the election must not move.
        drive_with_limit(monkeypatch, 10, order=order, fusion=fusion)

    def test_distinct_fractions_sharing_a_float_are_separated(
            self, monkeypatch):
        # Engineered tie: both densities round to float 1.0 but the exact
        # values differ, so only the refinement column can order them.
        monkeypatch.setattr(incremental, "FLOAT_RANK_LIMIT", 2)
        graph = Graph(nodes=range(4))
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        densities = {
            0: Fraction(1),
            1: Fraction(2**53 + 1, 2**53),  # float(...) == 1.0 exactly
            2: Fraction(2),
            3: Fraction(2),
        }
        assert float(densities[0]) == float(densities[1])
        tie_ids = {0: 0, 1: 1, 2: 2, 3: 3}  # float-only order favors node 0
        engine = IncrementalElection(order="basic")
        fast = engine.update(graph, densities, tie_ids=tie_ids)
        oracle = compute_clustering(graph, tie_ids=tie_ids, order="basic",
                                    densities=densities)
        assert fast.parents == oracle.parents
        assert fast.heads == oracle.heads
        refine = engine._refinement(densities)
        assert refine[0] != refine[1]  # the exact order survived rounding
        assert refine[2] == refine[3]  # equal Fractions share a sub-rank

    def test_below_limit_no_refinement_is_computed(self):
        graph = complete_graph(5)
        densities = all_densities(graph, exact=True)
        engine = IncrementalElection(order="basic")
        engine.update(graph, densities, tie_ids={n: n for n in graph})
        assert engine._refine is None
