"""Tests for the centralized clustering oracle."""

import pytest

from repro.clustering.oracle import compute_clustering
from repro.graph.generators import (
    complete_topology,
    line_topology,
    square_grid_topology,
    star_topology,
    uniform_topology,
)
from repro.graph.graph import Graph
from repro.graph.paths import hop_distance
from repro.util.errors import ConfigurationError


class TestFigure1:
    """The paper's worked example pins down parents and heads."""

    def test_heads_are_h_and_j(self, fig1):
        clustering = compute_clustering(fig1.graph, tie_ids=fig1.ids)
        assert clustering.heads == {"h", "j"}

    def test_parent_assignments_from_the_text(self, fig1):
        clustering = compute_clustering(fig1.graph, tie_ids=fig1.ids)
        assert clustering.parent("c") == "b"   # F(c) = b
        assert clustering.parent("b") == "h"   # F(b) = h
        assert clustering.parent("h") == "h"   # H(h) = h
        assert clustering.parent("f") == "j"   # F(f) = j
        assert clustering.parent("j") == "j"   # F(j) = j

    def test_head_chains_from_the_text(self, fig1):
        clustering = compute_clustering(fig1.graph, tie_ids=fig1.ids)
        for node in ("c", "b", "h"):
            assert clustering.head(node) == "h"
        for node in ("f", "j"):
            assert clustering.head(node) == "j"

    def test_invariants_hold(self, fig1):
        clustering = compute_clustering(fig1.graph, tie_ids=fig1.ids)
        clustering.check_invariants()


class TestBasicRule:
    def test_line_collapses_to_smallest_id(self):
        # Equal densities everywhere on a path; node 0 wins everything
        # within reach, chains merge to it.
        topo = line_topology(5)
        clustering = compute_clustering(topo.graph)
        assert clustering.heads == {0}
        assert clustering.head(4) == 0

    def test_star_center_wins(self):
        topo = star_topology(5)
        clustering = compute_clustering(topo.graph)
        # Leaves have density 1, center density 1; tie -> smallest id = 0.
        assert clustering.heads == {0}

    def test_complete_graph_single_cluster(self):
        topo = complete_topology(6)
        clustering = compute_clustering(topo.graph)
        assert clustering.cluster_count == 1
        assert clustering.average_tree_length() <= 1.0

    def test_isolated_nodes_are_their_own_heads(self):
        graph = Graph(nodes=["x", "y"], edges=[(1, 2)])
        clustering = compute_clustering(graph,
                                        tie_ids={"x": 10, "y": 11, 1: 1, 2: 2})
        assert clustering.is_head("x")
        assert clustering.is_head("y")

    def test_no_two_heads_adjacent_on_random_graphs(self):
        for seed in range(5):
            topo = uniform_topology(60, 0.2, rng=seed)
            clustering = compute_clustering(topo.graph)
            clustering.check_invariants()

    def test_deterministic(self, random50):
        a = compute_clustering(random50.graph)
        b = compute_clustering(random50.graph)
        assert a.parents == b.parents


class TestDagIds:
    def test_dag_ids_change_tie_breaks(self):
        # Path 0-1-2 with equal densities: normal ids elect 0; DAG names
        # can elect 1 instead.
        topo = line_topology(3)
        dag_ids = {0: 5, 1: 0, 2: 7}
        clustering = compute_clustering(topo.graph, dag_ids=dag_ids)
        assert clustering.heads == {1}

    def test_duplicate_distant_dag_ids_fall_back_to_tie_ids(self):
        # Nodes 0 and 2 share a DAG name but are not neighbors; the
        # globally unique tie id disambiguates without error.
        topo = line_topology(3)
        dag_ids = {0: 4, 1: 9, 2: 4}
        clustering = compute_clustering(topo.graph, dag_ids=dag_ids)
        clustering.check_invariants()

    def test_dag_ids_must_cover_nodes(self):
        topo = line_topology(3)
        with pytest.raises(ConfigurationError):
            compute_clustering(topo.graph, dag_ids={0: 1})


class TestGridPathology:
    def test_grid_without_dag_single_cluster(self):
        topo = square_grid_topology(100, radius=0.18)  # 10x10, 8-neighbors
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids)
        assert clustering.cluster_count == 1

    def test_grid_with_dag_many_clusters(self):
        from repro.naming.assign import assign_dag_ids
        import numpy as np
        topo = square_grid_topology(100, radius=0.18)
        dag_ids, _ = assign_dag_ids(topo, np.random.default_rng(0))
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids,
                                        dag_ids=dag_ids)
        assert clustering.cluster_count >= 4


class TestIncumbentOrder:
    def test_incumbent_head_survives_tie(self):
        # Path 0-1: equal densities; basic elects 0.  With node 1 as the
        # incumbent head, the incumbent order keeps 1.
        topo = line_topology(2)
        basic = compute_clustering(topo.graph)
        assert basic.heads == {0}
        kept = compute_clustering(topo.graph, order="incumbent",
                                  previous={1})
        assert kept.heads == {1}

    def test_no_previous_behaves_like_basic(self, random50):
        basic = compute_clustering(random50.graph)
        incumbent = compute_clustering(random50.graph, order="incumbent")
        assert basic.parents == incumbent.parents

    def test_previous_clustering_object_accepted(self, random50):
        first = compute_clustering(random50.graph)
        second = compute_clustering(random50.graph, order="incumbent",
                                    previous=first)
        # Unchanged topology: the incumbent solution is stationary.
        assert second.heads == first.heads

    def test_density_beats_incumbency(self):
        # Star center has higher density than a leaf incumbent after the
        # leaf loses its advantage: density dominates the head bit.
        graph = Graph(edges=[(0, 1), (0, 2), (1, 2), (0, 3)])
        # Node 0: N={1,2,3}, links 3+1=4 -> 4/3; node 3: N={0} -> 1.
        kept = compute_clustering(graph, order="incumbent", previous={3})
        assert not kept.is_head(3)


class TestFusion:
    def test_heads_at_least_three_hops_apart(self):
        for seed in range(6):
            topo = uniform_topology(60, 0.2, rng=seed)
            clustering = compute_clustering(topo.graph, fusion=True)
            clustering.check_fusion_separation()

    def test_fusion_never_increases_cluster_count(self):
        for seed in range(6):
            topo = uniform_topology(60, 0.2, rng=seed)
            basic = compute_clustering(topo.graph)
            fused = compute_clustering(topo.graph, fusion=True)
            assert fused.cluster_count <= basic.cluster_count

    def test_two_hop_heads_merge(self):
        # Path of 3: basic elects only node 0 (ids break the tie), so add
        # geometry where two 2-hop local maxima exist: 5-node path with
        # densities forced by triangles at both ends.
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4),
                             (0, 5), (1, 5),    # triangle at left end
                             (3, 6), (4, 6)])   # triangle at right end
        basic = compute_clustering(graph)
        if len(basic.heads) >= 2:
            heads = sorted(basic.heads)
            dist = hop_distance(graph, heads[0], heads[1])
            fused = compute_clustering(graph, fusion=True)
            if dist <= 2:
                assert len(fused.heads) < len(basic.heads)

    def test_fusion_clusters_remain_connected(self):
        for seed in range(4):
            topo = uniform_topology(70, 0.18, rng=seed + 50)
            clustering = compute_clustering(topo.graph, fusion=True)
            clustering.check_invariants()


class TestValidation:
    def test_tie_ids_must_be_unique(self):
        topo = line_topology(3)
        with pytest.raises(ConfigurationError):
            compute_clustering(topo.graph, tie_ids={0: 1, 1: 1, 2: 2})

    def test_tie_ids_must_cover(self):
        topo = line_topology(3)
        with pytest.raises(ConfigurationError):
            compute_clustering(topo.graph, tie_ids={0: 1})

    def test_unknown_order_rejected(self):
        topo = line_topology(3)
        with pytest.raises(ConfigurationError):
            compute_clustering(topo.graph, order="nope")

    def test_precomputed_densities_used(self, fig1):
        from repro.clustering.density import all_densities
        densities = all_densities(fig1.graph, exact=True)
        clustering = compute_clustering(fig1.graph, tie_ids=fig1.ids,
                                        densities=densities)
        assert clustering.heads == {"h", "j"}
