"""Unit tests for the ClusteringEngine protocol and the baseline engines."""

import numpy as np
import pytest

from repro.clustering.baselines import GreedyDominatingEngine, MaxMinEngine
from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.baselines.incremental import SCRATCH_FALLBACK_FRACTION
from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import maxmin_clustering
from repro.clustering.engine import engine_for, registered_engines
from repro.clustering.incremental import IncrementalElection
from repro.clustering.oracle import compute_clustering
from repro.graph.dynamic import DynamicTopology, WindowUpdate
from repro.graph.generators import uniform_topology
from repro.util.errors import ConfigurationError


def _seed_update(dynamic):
    return WindowUpdate(topology=dynamic.topology, delta=None,
                        density_changed=None, densities=dynamic.densities)


def _dynamic_from(topo, radius):
    positions = np.array([topo.positions[node]
                          for node in sorted(topo.graph.nodes)])
    return positions, DynamicTopology(positions, radius)


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert registered_engines() == ["degree", "density", "lowest-id",
                                        "max-min"]

    def test_factories_build_the_right_types(self):
        assert isinstance(engine_for("lowest-id"), GreedyDominatingEngine)
        assert isinstance(engine_for("degree"), GreedyDominatingEngine)
        assert isinstance(engine_for("max-min", d=3), MaxMinEngine)
        assert isinstance(engine_for("density"), IncrementalElection)

    def test_unknown_metric_raises(self):
        with pytest.raises(ConfigurationError):
            engine_for("betweenness")

    def test_options_are_validated(self):
        with pytest.raises(ConfigurationError):
            engine_for("max-min", d=0)
        with pytest.raises(ConfigurationError):
            GreedyDominatingEngine("random")


class TestProtocol:
    def test_init_matches_scratch(self):
        topo = uniform_topology(50, 0.2, rng=3)
        cases = {
            "lowest-id": lowest_id_clustering(topo.graph, tie_ids=topo.ids),
            "degree": degree_clustering(topo.graph, tie_ids=topo.ids),
            "max-min": maxmin_clustering(topo.graph, d=2, tie_ids=topo.ids),
            "density": compute_clustering(topo.graph, tie_ids=topo.ids),
        }
        for metric, want in cases.items():
            engine = engine_for(metric)
            got = engine.init(topo)
            assert got.parents == want.parents
            assert engine.result() is got

    def test_result_before_init_raises(self):
        for metric in registered_engines():
            with pytest.raises(ConfigurationError):
                engine_for(metric).result()

    def test_apply_delta_before_init_seeds(self):
        topo = uniform_topology(20, 0.2, rng=1)
        _positions, dynamic = _dynamic_from(topo, 0.2)
        for metric in registered_engines():
            engine = engine_for(metric)
            got = engine.apply_delta(_seed_update(dynamic))
            assert engine.result() is got

    def test_empty_delta_returns_previous_object(self):
        topo = uniform_topology(25, 0.2, rng=2)
        positions, dynamic = _dynamic_from(topo, 0.2)
        engines = [engine_for(m) for m in registered_engines()]
        seeded = [e.apply_delta(_seed_update(dynamic)) for e in engines]
        update = dynamic.move(positions)  # nothing moved
        assert not update.delta
        for engine, previous in zip(engines, seeded):
            assert engine.apply_delta(update) is previous

    def test_node_set_change_reseeds(self):
        topo = uniform_topology(20, 0.25, rng=4)
        _positions, dynamic = _dynamic_from(topo, 0.25)
        engines = [engine_for(m) for m in registered_engines()]
        for engine in engines:
            engine.apply_delta(_seed_update(dynamic))
        update = dynamic.apply_churn(departed=[0],
                                     arrivals=[(99, (0.5, 0.5))])
        for engine in engines:
            clustering = engine.apply_delta(update)
            assert 99 in clustering.parents
            assert 0 not in clustering.parents


class TestUnchangedClusteringShortCircuit:
    def test_intra_cluster_edge_removal_returns_previous_object(self):
        # Triangle 0-1-2 inside radius 0.1; moving node 2 breaks the
        # (1, 2) edge but both stay members of head 0, so the parent
        # array is unchanged and the engines hand back the previous
        # Clustering object without rebuilding it.
        positions = np.array([[0.0, 0.0], [0.09, 0.0], [0.045, 0.078]])
        dynamic = DynamicTopology(positions, 0.1)
        assert dynamic.graph.edge_count() == 3
        engines = {m: engine_for(m) for m in ("lowest-id", "degree")}
        seeded = {m: e.apply_delta(_seed_update(dynamic))
                  for m, e in engines.items()}
        moved = positions.copy()
        moved[2] = (0.02, 0.09)
        update = dynamic.move(moved)
        assert len(update.delta.removed) == 1
        assert not len(update.delta.added)
        for metric, engine in engines.items():
            assert engine.apply_delta(update) is seeded[metric]


class TestRepairPaths:
    """Exercise both the incremental repair and the scratch fallback."""

    RADIUS = 0.08

    def _drive(self, metric, count, mover_count, seed):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0, 1, size=(count, 2))
        dynamic = DynamicTopology(positions, self.RADIUS)
        engine = engine_for(metric)
        engine.apply_delta(_seed_update(dynamic))
        for _ in range(5):
            movers = rng.choice(count, size=mover_count, replace=False)
            positions = positions.copy()
            positions[movers] += rng.uniform(-0.02, 0.02,
                                             size=(mover_count, 2))
            positions = np.clip(positions, 0, 1)
            update = dynamic.move(positions)
            got = engine.apply_delta(update)
            topo = update.topology
            if metric == "max-min":
                want = maxmin_clustering(topo.graph, d=2, tie_ids=topo.ids)
            elif metric == "degree":
                want = degree_clustering(topo.graph, tie_ids=topo.ids)
            else:
                want = lowest_id_clustering(topo.graph, tie_ids=topo.ids)
            assert got.parents == want.parents, metric

    @pytest.mark.parametrize("metric", ["lowest-id", "degree", "max-min"])
    def test_small_deltas_stay_exact(self, metric):
        # A couple of movers among 250 nodes: the dirty set is far below
        # the scratch threshold, so the repair path runs.
        self._drive(metric, count=250, mover_count=2, seed=11)

    @pytest.mark.parametrize("metric", ["lowest-id", "degree", "max-min"])
    def test_bulk_deltas_fall_back_to_scratch(self, metric):
        # Most of the population moves every window: the dirty set blows
        # the SCRATCH_FALLBACK_FRACTION budget and the engines rebuild.
        assert SCRATCH_FALLBACK_FRACTION > 1
        self._drive(metric, count=60, mover_count=55, seed=12)
