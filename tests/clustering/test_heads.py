"""Tests for the per-node clusterHead choice rules."""

from repro.clustering.heads import (
    best_neighbor,
    choose_parent,
    dominates_two_hop_heads,
    is_local_max,
    wants_headship,
)


class TestIsLocalMax:
    def test_strictly_greater_than_all(self):
        assert is_local_max((2,), [(1,), (0,)])

    def test_not_max_if_any_neighbor_wins(self):
        assert not is_local_max((1,), [(2,), (0,)])

    def test_vacuous_for_isolated_node(self):
        assert is_local_max((0,), [])


class TestBestNeighbor:
    def test_picks_greatest_key(self):
        assert best_neighbor({"a": (1,), "b": (3,), "c": (2,)}) == "b"

    def test_single_neighbor(self):
        assert best_neighbor({"only": (0,)}) == "only"


class TestChooseParent:
    def test_local_max_is_its_own_parent(self):
        assert choose_parent("p", (5,), {"q": (1,)}) == "p"

    def test_otherwise_best_neighbor(self):
        assert choose_parent("p", (1,), {"q": (2,), "r": (3,)}) == "r"

    def test_isolated_node_is_its_own_parent(self):
        assert choose_parent("p", (0,), {}) == "p"


class TestFusionCondition:
    def test_dominates_empty_claims(self):
        assert dominates_two_hop_heads((2,), [])

    def test_blocked_by_stronger_claim(self):
        assert not dominates_two_hop_heads((2,), [(3,)])

    def test_dominates_weaker_claims(self):
        assert dominates_two_hop_heads((2,), [(1,), (0,)])


class TestWantsHeadship:
    def test_basic_rule_ignores_two_hop(self):
        assert wants_headship((2,), [(1,)], claimed_two_hop_head_keys=None)

    def test_fusion_rule_blocks(self):
        assert not wants_headship((2,), [(1,)],
                                  claimed_two_hop_head_keys=[(3,)])

    def test_fusion_rule_allows_when_dominating(self):
        assert wants_headship((2,), [(1,)], claimed_two_hop_head_keys=[(1,)])

    def test_must_be_local_max_first(self):
        assert not wants_headship((1,), [(2,)], claimed_two_hop_head_keys=[])
