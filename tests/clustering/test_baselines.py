"""Tests for the baseline clustering heuristics."""

import pytest

from repro.clustering.baselines.common import (
    greedy_dominating_clustering,
    greedy_dominating_clustering_reference,
    priority_columns,
)
from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import (
    maxmin_clustering,
    maxmin_clustering_reference,
)
from repro.graph.generators import (
    complete_topology,
    line_topology,
    star_topology,
    uniform_topology,
)
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError


class TestGreedyDominating:
    def test_heads_form_dominating_set(self, random50):
        graph = random50.graph
        priority = {node: -node for node in graph}
        clustering = greedy_dominating_clustering(graph, priority)
        for node in graph:
            assert clustering.is_head(node) or any(
                clustering.is_head(q) for q in graph.neighbors(node))

    def test_heads_are_independent_set(self, random50):
        graph = random50.graph
        priority = {node: -node for node in graph}
        clustering = greedy_dominating_clustering(graph, priority)
        clustering.check_invariants()  # includes heads-non-adjacent

    def test_one_hop_clusters(self, random50):
        graph = random50.graph
        priority = {node: -node for node in graph}
        clustering = greedy_dominating_clustering(graph, priority)
        assert all(clustering.depth(node) <= 1 for node in graph)


class TestLowestId:
    def test_line_heads_alternate_from_zero(self):
        clustering = lowest_id_clustering(line_topology(5).graph)
        assert 0 in clustering.heads
        assert 1 not in clustering.heads

    def test_star_head_is_lowest(self):
        clustering = lowest_id_clustering(star_topology(4).graph)
        assert clustering.heads == {0}

    def test_custom_tie_ids_invert_choice(self):
        graph = line_topology(2).graph
        clustering = lowest_id_clustering(graph, tie_ids={0: 9, 1: 1})
        assert clustering.heads == {1}

    def test_members_join_lowest_adjacent_head(self):
        # Node 2 adjacent to heads 0 and ... construct: 0-2, 1-2, 0 and 1
        # not adjacent, both become heads?  0 covers 2, so 1 is uncovered
        # and becomes a head too; 2 joins min(0, 1) = 0.
        graph = Graph(edges=[(0, 2), (1, 2)])
        clustering = lowest_id_clustering(graph)
        assert clustering.heads == {0, 1}
        assert clustering.head(2) == 0

    def test_tie_ids_must_cover(self):
        with pytest.raises(ConfigurationError):
            lowest_id_clustering(line_topology(3).graph, tie_ids={0: 1})


class TestDegree:
    def test_highest_degree_becomes_head(self):
        clustering = degree_clustering(star_topology(5).graph)
        assert clustering.heads == {0}

    def test_degree_tie_falls_to_lower_id(self):
        clustering = degree_clustering(complete_topology(4).graph)
        assert clustering.heads == {0}

    def test_dominating_property(self, random50):
        clustering = degree_clustering(random50.graph)
        graph = random50.graph
        for node in graph:
            assert clustering.is_head(node) or any(
                clustering.is_head(q) for q in graph.neighbors(node))

    def test_tie_ids_must_cover(self):
        with pytest.raises(ConfigurationError):
            degree_clustering(line_topology(3).graph, tie_ids={})


class TestMaxMin:
    def test_every_node_gets_a_head(self, random50):
        clustering = maxmin_clustering(random50.graph, d=2)
        assert set(clustering.head_of) == set(random50.graph.nodes)

    def test_heads_head_themselves(self, random50):
        clustering = maxmin_clustering(random50.graph, d=2)
        for head in clustering.heads:
            assert clustering.head(head) == head

    def test_complete_graph_elects_max_id(self):
        # Floodmax makes the largest identifier win everywhere; rule 1
        # keeps it, everyone else adopts it.
        clustering = maxmin_clustering(complete_topology(5).graph, d=1)
        assert clustering.heads == {4}

    def test_line_with_d_spanning_everything(self):
        clustering = maxmin_clustering(line_topology(3).graph, d=3)
        assert clustering.heads == {2}

    def test_isolated_node_is_singleton_head(self):
        graph = Graph(nodes=[5], edges=[(0, 1)])
        clustering = maxmin_clustering(graph, d=2)
        assert clustering.is_head(5)

    def test_d_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            maxmin_clustering(line_topology(3).graph, d=0)

    def test_tie_ids_must_be_unique(self):
        with pytest.raises(ConfigurationError):
            maxmin_clustering(line_topology(2).graph, tie_ids={0: 1, 1: 1})

    def test_clusters_are_valid_forests(self):
        for seed in range(4):
            topo = uniform_topology(50, 0.22, rng=seed)
            clustering = maxmin_clustering(topo.graph, d=2)
            # Parents resolve without cycles and clusters are connected.
            for head in clustering.heads:
                clustering.head_eccentricity(head)

    def test_larger_d_means_no_more_clusters(self, random50):
        small = maxmin_clustering(random50.graph, d=1)
        large = maxmin_clustering(random50.graph, d=3)
        assert large.cluster_count <= small.cluster_count


class TestVectorizedAgainstReference:
    """The CSR fast paths reproduce the per-node originals bit for bit."""

    def test_greedy_matches_reference_on_random_graphs(self):
        for seed in range(6):
            topo = uniform_topology(60, 0.18, rng=seed)
            graph = topo.graph
            for priority in (
                {node: -node for node in graph},
                {node: (graph.degree(node), -node) for node in graph},
            ):
                fast = greedy_dominating_clustering(graph, priority)
                slow = greedy_dominating_clustering_reference(graph, priority)
                assert fast.heads == slow.heads
                assert fast.parents == slow.parents

    def test_greedy_matches_reference_on_shapes(self):
        for topo in (line_topology(7), star_topology(6),
                     complete_topology(5)):
            graph = topo.graph
            priority = {node: -node for node in graph}
            fast = greedy_dominating_clustering(graph, priority)
            slow = greedy_dominating_clustering_reference(graph, priority)
            assert fast.parents == slow.parents

    def test_maxmin_matches_reference_on_random_graphs(self):
        for seed in range(6):
            topo = uniform_topology(60, 0.15, rng=seed)
            for d in (1, 2, 3):
                fast = maxmin_clustering(topo.graph, d=d, tie_ids=topo.ids)
                slow = maxmin_clustering_reference(topo.graph, d=d,
                                                   tie_ids=topo.ids)
                assert fast.heads == slow.heads
                assert fast.parents == slow.parents

    def test_maxmin_singleton_fallback_matches_reference(self):
        # This seed triggers the disconnected-member fallback at d=2
        # (see tests/property/test_engine_properties.py).
        topo = uniform_topology(30, 0.12, rng=57)
        fast = maxmin_clustering(topo.graph, d=2, tie_ids=topo.ids)
        slow = maxmin_clustering_reference(topo.graph, d=2, tie_ids=topo.ids)
        assert fast.parents == slow.parents

    def test_non_unique_priorities_use_reference_path(self):
        # Equal keys make the reference's parent choice depend on set
        # iteration order; the vectorized path must decline (and the
        # public entry point then matches the reference by construction).
        graph = Graph(edges=[(0, 2), (1, 2)])
        priority = {0: 1, 1: 1, 2: 0}
        ids = graph.to_csr().ids
        assert priority_columns(ids, priority) is None
        fast = greedy_dominating_clustering(graph, priority)
        slow = greedy_dominating_clustering_reference(graph, priority)
        assert fast.parents == slow.parents

    def test_priority_columns_rejects_exotic_keys(self):
        ids = (0, 1, 2)
        # Mixed scalar/tuple and ragged tuple widths.
        assert priority_columns(ids, {0: (1, 2), 1: 3, 2: (4, 5)}) is None
        assert priority_columns(ids, {0: (1, 2), 1: (3,), 2: (4, 5)}) is None
        # Non-numeric keys.
        assert priority_columns(ids, {0: "a", 1: "b", 2: "c"}) is None
        # Over-int64 unsigned values cannot be laid out losslessly.
        assert priority_columns(ids, {0: 2**64, 1: 1, 2: 2}) is None
        # Plain ints lay out as one int64 column.
        columns = priority_columns(ids, {0: 5, 1: 3, 2: 4})
        assert len(columns) == 1
        assert columns[0].tolist() == [5, 3, 4]

    def test_empty_graph(self):
        clustering = greedy_dominating_clustering(Graph(), {})
        assert clustering.parents == {}
        assert maxmin_clustering(Graph(), d=2).parents == {}
