"""Tests for the Clustering result object and its metrics."""

import pytest

from repro.clustering.result import Clustering
from repro.graph.generators import line_topology, star_topology
from repro.graph.graph import Graph
from repro.util.errors import TopologyError


def chain_clustering():
    """0 <- 1 <- 2 <- 3: a single cluster headed by 0."""
    graph = line_topology(4).graph
    parents = {0: 0, 1: 0, 2: 1, 3: 2}
    return Clustering(graph, parents)


def two_cluster_line():
    """0 <- 1   2 -> 3: two clusters on a 4-node line."""
    graph = line_topology(4).graph
    parents = {0: 0, 1: 0, 2: 3, 3: 3}
    return Clustering(graph, parents)


class TestConstruction:
    def test_heads_are_self_parents(self):
        clustering = two_cluster_line()
        assert clustering.heads == {0, 3}

    def test_head_resolution_follows_chains(self):
        clustering = chain_clustering()
        assert clustering.head(3) == 0
        assert clustering.head(0) == 0

    def test_clusters_grouping(self):
        clustering = two_cluster_line()
        assert clustering.members(0) == {0, 1}
        assert clustering.members(3) == {2, 3}

    def test_parent_must_be_neighbor_or_self(self):
        graph = line_topology(3).graph
        with pytest.raises(TopologyError):
            Clustering(graph, {0: 2, 1: 1, 2: 2})  # 0-2 not an edge

    def test_parents_must_cover_nodes(self):
        graph = line_topology(3).graph
        with pytest.raises(TopologyError):
            Clustering(graph, {0: 0, 1: 0})

    def test_cycle_detection(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        with pytest.raises(TopologyError):
            Clustering(graph, {0: 1, 1: 2, 2: 0})

    def test_two_cycle_detection(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(TopologyError):
            Clustering(graph, {0: 1, 1: 0})

    def test_isolated_self_head(self):
        graph = Graph(nodes=[7])
        clustering = Clustering(graph, {7: 7})
        assert clustering.heads == {7}
        assert clustering.members(7) == {7}


class TestQueries:
    def test_is_head(self):
        clustering = two_cluster_line()
        assert clustering.is_head(0)
        assert not clustering.is_head(1)

    def test_depth(self):
        clustering = chain_clustering()
        assert clustering.depth(0) == 0
        assert clustering.depth(3) == 3

    def test_members_of_non_head_raises(self):
        with pytest.raises(TopologyError):
            two_cluster_line().members(1)

    def test_cluster_count(self):
        assert chain_clustering().cluster_count == 1
        assert two_cluster_line().cluster_count == 2


class TestMetrics:
    def test_tree_length_of_chain(self):
        assert chain_clustering().tree_length(0) == 3

    def test_tree_length_of_singleton(self):
        graph = Graph(nodes=[1])
        assert Clustering(graph, {1: 1}).tree_length(1) == 0

    def test_average_tree_length(self):
        assert two_cluster_line().average_tree_length() == 1.0

    def test_head_eccentricity_within_cluster(self):
        clustering = two_cluster_line()
        assert clustering.head_eccentricity(0) == 1
        assert clustering.head_eccentricity(3) == 1

    def test_eccentricity_uses_cluster_subgraph(self):
        # Star: center 0 heads everything; eccentricity 1 even though
        # leaf-to-leaf distance is 2.
        graph = star_topology(4).graph
        parents = {0: 0, 1: 0, 2: 0, 3: 0, 4: 0}
        clustering = Clustering(graph, parents)
        assert clustering.head_eccentricity(0) == 1

    def test_average_head_eccentricity(self):
        assert two_cluster_line().average_head_eccentricity() == 1.0

    def test_empty_graph_metrics(self):
        clustering = Clustering(Graph(), {})
        assert clustering.average_tree_length() == 0.0
        assert clustering.average_head_eccentricity() == 0.0


class TestInvariants:
    def test_valid_clustering_passes(self):
        two_cluster_line().check_invariants()

    def test_adjacent_heads_detected(self):
        graph = line_topology(2).graph
        clustering = Clustering(graph, {0: 0, 1: 1})
        with pytest.raises(TopologyError):
            clustering.check_invariants()

    def test_adjacent_heads_allowed_when_disabled(self):
        graph = line_topology(2).graph
        clustering = Clustering(graph, {0: 0, 1: 1})
        clustering.check_invariants(heads_non_adjacent=False)

    def test_fusion_separation_detected(self):
        # Heads 0 and 2 are two hops apart on a 3-node line.
        graph = line_topology(3).graph
        clustering = Clustering(graph, {0: 0, 1: 0, 2: 2}, fusion=True)
        with pytest.raises(TopologyError):
            clustering.check_invariants(heads_non_adjacent=False)

    def test_fusion_separation_satisfied(self):
        # Heads 0 and 3 on a 4-node line are three hops apart.
        graph = line_topology(4).graph
        clustering = Clustering(graph, {0: 0, 1: 0, 2: 3, 3: 3}, fusion=True)
        clustering.check_fusion_separation()
