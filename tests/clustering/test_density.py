"""Tests for Definition 1's density metric, including Table 1 exactness."""

from fractions import Fraction

import pytest

from repro.clustering.density import (
    ISOLATED_DENSITY,
    all_densities,
    density,
    density_bounds,
    edges_among,
)
from repro.experiments.paper_values import TABLE1
from repro.graph.generators import (
    complete_topology,
    line_topology,
    star_topology,
)
from repro.graph.graph import Graph
from repro.util.errors import TopologyError


class TestTable1Exact:
    def test_every_density_matches_the_paper(self, fig1):
        densities = all_densities(fig1.graph, exact=True)
        for node, (_, _, expected) in TABLE1.items():
            assert densities[node] == Fraction(expected).limit_denominator(8)

    def test_link_counts_match_the_paper(self, fig1):
        for node, (_, links, _) in TABLE1.items():
            neighbors = fig1.graph.neighbors(node)
            assert len(neighbors) + edges_among(fig1.graph, neighbors) == links

    def test_single_node_density_agrees_with_bulk(self, fig1):
        bulk = all_densities(fig1.graph, exact=True)
        for node in fig1.graph:
            assert density(fig1.graph, node, exact=True) == bulk[node]


class TestDefinition:
    def test_path_interior_density_is_one(self):
        graph = line_topology(5).graph
        assert density(graph, 2) == 1.0

    def test_path_endpoint_density_is_one(self):
        graph = line_topology(5).graph
        assert density(graph, 0) == 1.0

    def test_star_center(self):
        # Center of a 4-leaf star: 4 links, 4 neighbors, no triangles.
        graph = star_topology(4).graph
        assert density(graph, 0) == 1.0

    def test_triangle_density(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        # Each node: 2 neighbors, 3 links -> 1.5.
        assert density(graph, 0) == 1.5

    def test_complete_graph_hits_upper_bound(self):
        graph = complete_topology(6).graph
        deg = 5
        expected_high = 1.0 + (deg - 1) / 2.0
        for node in graph:
            assert density(graph, node) == pytest.approx(expected_high)

    def test_isolated_node(self):
        graph = Graph(nodes=[1])
        assert density(graph, 1) == ISOLATED_DENSITY
        assert density(graph, 1, exact=True) == Fraction(0)

    def test_exact_returns_fraction(self, fig1):
        value = density(fig1.graph, "b", exact=True)
        assert isinstance(value, Fraction)
        assert value == Fraction(5, 4)

    def test_missing_node_raises(self):
        with pytest.raises(TopologyError):
            density(Graph(), 1)


class TestAllDensities:
    def test_matches_per_node_on_random_graph(self, random50):
        graph = random50.graph
        bulk = all_densities(graph, exact=True)
        for node in graph:
            assert bulk[node] == density(graph, node, exact=True)

    def test_exact_flag_types(self, k4):
        floats = all_densities(k4.graph)
        fractions = all_densities(k4.graph, exact=True)
        assert all(isinstance(v, float) for v in floats.values())
        assert all(isinstance(v, Fraction) for v in fractions.values())

    def test_covers_isolated_nodes(self):
        graph = Graph(nodes=[1, 2], edges=[(3, 4)])
        bulk = all_densities(graph)
        assert bulk[1] == ISOLATED_DENSITY
        assert bulk[3] == 1.0


class TestEdgesAmong:
    def test_counts_each_edge_once(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        assert edges_among(graph, {0, 1, 2}) == 3

    def test_ignores_edges_leaving_the_set(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert edges_among(graph, {0, 1}) == 1

    def test_empty_set(self, k4):
        assert edges_among(k4.graph, set()) == 0


class TestDensityBounds:
    def test_degree_zero(self):
        assert density_bounds(0) == (ISOLATED_DENSITY, ISOLATED_DENSITY)

    def test_degree_one(self):
        assert density_bounds(1) == (1.0, 1.0)

    def test_general_degree(self):
        low, high = density_bounds(5)
        assert low == 1.0
        assert high == 3.0

    def test_negative_degree_raises(self):
        with pytest.raises(TopologyError):
            density_bounds(-1)

    def test_bounds_hold_on_random_graph(self, random50):
        graph = random50.graph
        for node, value in all_densities(graph).items():
            low, high = density_bounds(graph.degree(node))
            assert low <= value <= high
