"""Tests for the battery model."""

import pytest

from repro.clustering.result import Clustering
from repro.energy.battery import BatteryModel
from repro.graph.generators import line_topology
from repro.util.errors import ConfigurationError


def clustering_with_head_zero():
    graph = line_topology(3).graph
    return Clustering(graph, {0: 0, 1: 0, 2: 1})


class TestBatteryModel:
    def test_initial_full(self):
        battery = BatteryModel([1, 2], capacity=50.0)
        assert battery.residual(1) == 50.0
        assert battery.alive() == {1, 2}
        assert battery.fraction_alive() == 1.0

    def test_head_drains_faster(self):
        battery = BatteryModel([0, 1, 2], capacity=100.0, head_cost=4.0,
                               member_cost=1.0)
        battery.drain(clustering_with_head_zero())
        assert battery.residual(0) == 96.0
        assert battery.residual(1) == 99.0
        assert battery.residual(2) == 99.0

    def test_energy_never_negative(self):
        battery = BatteryModel([0, 1, 2], capacity=3.0, head_cost=4.0,
                               member_cost=1.0)
        battery.drain(clustering_with_head_zero())
        assert battery.residual(0) == 0.0

    def test_dead_nodes_stop_draining(self):
        battery = BatteryModel([0, 1, 2], capacity=4.0, head_cost=4.0,
                               member_cost=1.0)
        battery.drain(clustering_with_head_zero())
        assert battery.dead() == {0}
        battery.drain(clustering_with_head_zero())
        assert battery.residual(0) == 0.0

    def test_nodes_outside_clustering_not_charged(self):
        battery = BatteryModel([0, 1, 2, 99], capacity=10.0)
        battery.drain(clustering_with_head_zero())
        assert battery.residual(99) == 10.0

    def test_bucket_boundaries(self):
        battery = BatteryModel([0], capacity=100.0)
        assert battery.bucket(0, buckets=5) == 5
        battery.energy[0] = 50.0
        assert battery.bucket(0, buckets=5) == 3
        battery.energy[0] = 0.0
        assert battery.bucket(0, buckets=5) == 0

    def test_bucket_validation(self):
        battery = BatteryModel([0])
        with pytest.raises(ConfigurationError):
            battery.bucket(0, buckets=0)

    def test_rejects_free_headship(self):
        with pytest.raises(ConfigurationError):
            BatteryModel([0], head_cost=0.5, member_cost=1.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            BatteryModel([0], capacity=0.0)
