"""Tests for energy-aware clustering and lifetime simulation."""

import pytest

from repro.energy.battery import BatteryModel
from repro.energy.lifetime import simulate_lifetime
from repro.energy.policy import (
    clustering_for_policy,
    energy_aware_clustering,
    energy_keys,
)
from repro.graph.generators import line_topology, uniform_topology
from repro.util.errors import ConfigurationError


class TestEnergyKeys:
    def test_energy_bucket_dominates_density(self):
        topo = line_topology(2)
        battery = BatteryModel(topo.graph.nodes)
        battery.energy[0] = 10.0  # node 0 nearly drained
        keys = energy_keys(topo.graph, battery, tie_ids=topo.ids)
        assert keys[1] > keys[0]

    def test_equal_energy_falls_back_to_paper_order(self):
        topo = line_topology(2)
        battery = BatteryModel(topo.graph.nodes)
        keys = energy_keys(topo.graph, battery, tie_ids=topo.ids)
        assert keys[0] > keys[1]  # equal density, smaller id wins

    def test_keys_globally_distinct(self):
        topo = uniform_topology(40, 0.2, rng=1)
        battery = BatteryModel(topo.graph.nodes)
        keys = energy_keys(topo.graph, battery, tie_ids=topo.ids)
        assert len(set(keys.values())) == len(keys)


class TestEnergyAwareClustering:
    def test_valid_clustering(self):
        topo = uniform_topology(50, 0.22, rng=2)
        battery = BatteryModel(topo.graph.nodes)
        clustering = energy_aware_clustering(topo.graph, battery,
                                             tie_ids=topo.ids)
        clustering.check_invariants()

    def test_drained_head_loses_to_fresh_neighbor(self):
        topo = line_topology(2)
        battery = BatteryModel(topo.graph.nodes)
        first = energy_aware_clustering(topo.graph, battery,
                                        tie_ids=topo.ids)
        head = next(iter(first.heads))
        battery.energy[head] = 5.0
        second = energy_aware_clustering(topo.graph, battery,
                                         tie_ids=topo.ids)
        assert head not in second.heads

    def test_policy_dispatch(self):
        topo = line_topology(3)
        battery = BatteryModel(topo.graph.nodes)
        for policy in ("static", "energy-aware"):
            clustering = clustering_for_policy(policy, topo.graph, battery,
                                               topo.ids)
            clustering.check_invariants()
        with pytest.raises(ConfigurationError):
            clustering_for_policy("greedy", topo.graph, battery, topo.ids)


class TestLifetime:
    def test_survival_curve_monotone(self):
        topo = uniform_topology(60, 0.2, rng=3)
        result = simulate_lifetime(topo, "static", windows=60, capacity=40.0)
        assert result.survival == sorted(result.survival, reverse=True)

    def test_rotation_delays_first_death(self):
        topo = uniform_topology(80, 0.2, rng=4)
        static = simulate_lifetime(topo, "static", windows=60,
                                   capacity=60.0)
        aware = simulate_lifetime(topo, "energy-aware", windows=60,
                                  capacity=60.0)
        assert aware.first_death > static.first_death

    def test_rotation_costs_head_changes(self):
        topo = uniform_topology(80, 0.2, rng=5)
        static = simulate_lifetime(topo, "static", windows=40,
                                   capacity=60.0)
        aware = simulate_lifetime(topo, "energy-aware", windows=40,
                                  capacity=60.0)
        assert aware.head_changes >= static.head_changes

    def test_no_death_reports_windows_plus_one(self):
        topo = uniform_topology(30, 0.3, rng=6)
        result = simulate_lifetime(topo, "static", windows=5,
                                   capacity=1000.0)
        assert result.first_death == 6
        assert result.half_life == 6
        assert result.final_alive_fraction == 1.0

    def test_rejects_zero_windows(self):
        topo = line_topology(3)
        with pytest.raises(ConfigurationError):
            simulate_lifetime(topo, "static", windows=0)
