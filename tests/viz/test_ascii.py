"""Tests for the ASCII renderer."""

import pytest

from repro.clustering.oracle import compute_clustering
from repro.graph.generators import figure1_topology, line_topology
from repro.viz.ascii import cluster_legend, render_clustering
from repro.util.errors import ConfigurationError


@pytest.fixture
def fig1_clustered():
    topo = figure1_topology()
    return topo, compute_clustering(topo.graph, tie_ids=topo.ids)


class TestRenderClustering:
    def test_renders_all_visible_nodes(self, fig1_clustered):
        topo, clustering = fig1_clustered
        text = render_clustering(topo, clustering, width=40, height=16)
        # Two clusters -> symbols a/A and b/B; heads uppercase.
        visible = set(text.replace("\n", "").replace(" ", ""))
        assert visible <= {"a", "A", "b", "B"}
        assert "A" in visible and "B" in visible

    def test_heads_win_canvas_collisions(self, fig1_clustered):
        topo, clustering = fig1_clustered
        # Tiny canvas forces collisions; heads must stay visible.
        text = render_clustering(topo, clustering, width=3, height=3)
        upper = [c for c in text if c.isupper()]
        assert upper

    def test_requires_positions(self):
        topo = line_topology(3)
        clustering = compute_clustering(topo.graph)
        with pytest.raises(ConfigurationError):
            render_clustering(topo, clustering)

    def test_requires_canvas(self, fig1_clustered):
        topo, clustering = fig1_clustered
        with pytest.raises(ConfigurationError):
            render_clustering(topo, clustering, width=1, height=10)


class TestClusterLegend:
    def test_counts_and_sizes(self, fig1_clustered):
        _, clustering = fig1_clustered
        legend = cluster_legend(clustering)
        assert legend.startswith("2 clusters")
        assert "5 nodes" in legend  # cluster of h: {h, b, i, c, e}

    def test_truncation(self, fig1_clustered):
        _, clustering = fig1_clustered
        legend = cluster_legend(clustering, limit=1)
        assert "and 1 more" in legend
