"""Tests for the cluster overlay graph."""

import pytest

from repro.clustering.oracle import compute_clustering
from repro.graph.generators import line_topology, uniform_topology
from repro.hierarchy.overlay import gateway_for, overlay_topology
from repro.util.errors import ConfigurationError


@pytest.fixture
def line_overlay():
    # 6-node line clusters into {0,1,2} (head 0) and {3,4,5} (head 3)...
    # actually density clustering on a line gives one cluster; build a
    # custom clustering to control the shape.
    from repro.clustering.result import Clustering
    topo = line_topology(6)
    clustering = Clustering(topo.graph,
                            {0: 0, 1: 0, 2: 1, 3: 3, 4: 3, 5: 4})
    return topo, clustering, overlay_topology(topo, clustering)


class TestOverlayTopology:
    def test_nodes_are_heads(self, line_overlay):
        _, clustering, overlay = line_overlay
        assert set(overlay.topology.graph.nodes) == clustering.heads

    def test_adjacent_clusters_linked(self, line_overlay):
        _, _, overlay = line_overlay
        assert overlay.topology.graph.has_edge(0, 3)

    def test_gateway_realizes_the_edge(self, line_overlay):
        topo, clustering, overlay = line_overlay
        u, v = gateway_for(overlay, 0, 3)
        assert clustering.head(u) == 0
        assert clustering.head(v) == 3
        assert topo.graph.has_edge(u, v)

    def test_gateway_orientation_flips(self, line_overlay):
        _, _, overlay = line_overlay
        assert gateway_for(overlay, 0, 3) == \
            tuple(reversed(gateway_for(overlay, 3, 0)))

    def test_missing_edge_rejected(self, line_overlay):
        _, _, overlay = line_overlay
        with pytest.raises(ConfigurationError):
            gateway_for(overlay, 0, 99)

    def test_ids_inherited(self, line_overlay):
        topo, _, overlay = line_overlay
        for head in overlay.topology.graph:
            assert overlay.topology.ids[head] == topo.ids[head]

    def test_real_clustering_overlay(self):
        topo = uniform_topology(80, 0.18, rng=3)
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids)
        overlay = overlay_topology(topo, clustering)
        # Every overlay edge must be realized by a physical border edge.
        for a, b in overlay.topology.graph.edges:
            u, v = gateway_for(overlay, a, b)
            assert topo.graph.has_edge(u, v)
            assert clustering.head(u) == a
            assert clustering.head(v) == b

    def test_positions_projected_for_heads(self):
        topo = uniform_topology(40, 0.25, rng=4)
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids)
        overlay = overlay_topology(topo, clustering)
        assert set(overlay.topology.positions) == clustering.heads
