"""Tests for multi-level hierarchy construction and addressing."""

import pytest

from repro.graph.generators import complete_topology, line_topology, \
    uniform_topology
from repro.graph.paths import connected_components
from repro.hierarchy.hierarchy import Hierarchy, build_hierarchy
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def hierarchy300():
    topo = uniform_topology(300, 0.12, rng=1)
    return topo, build_hierarchy(topo, rng=2)


class TestBuildHierarchy:
    def test_levels_shrink(self, hierarchy300):
        _, hierarchy = hierarchy300
        sizes = [len(level.topology.graph) for level in hierarchy.levels]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == 300

    def test_top_level_is_terminal(self, hierarchy300):
        topo, hierarchy = hierarchy300
        top = hierarchy.levels[-1]
        components = connected_components(topo.graph)
        # Per connected component, the top level has one cluster.
        assert top.clustering.cluster_count <= len(components) \
            or top.index == hierarchy.depth - 1

    def test_every_level_has_valid_clustering(self, hierarchy300):
        _, hierarchy = hierarchy300
        for level in hierarchy.levels:
            level.clustering.check_invariants()

    def test_overlay_only_below_top(self, hierarchy300):
        _, hierarchy = hierarchy300
        for level in hierarchy.levels[:-1]:
            assert level.overlay is not None
        assert hierarchy.levels[-1].overlay is None

    def test_complete_graph_is_one_level(self):
        topo = complete_topology(8)
        hierarchy = build_hierarchy(topo, use_dag=False)
        assert hierarchy.depth == 1
        assert hierarchy.heads_at(0) == {0}

    def test_max_levels_cap(self):
        topo = line_topology(64)
        hierarchy = build_hierarchy(topo, use_dag=False, max_levels=2)
        assert hierarchy.depth <= 2

    def test_rejects_zero_levels(self):
        with pytest.raises(ConfigurationError):
            build_hierarchy(line_topology(4), max_levels=0)

    def test_empty_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            Hierarchy([])


class TestAddressing:
    def test_address_starts_at_node_ends_at_top_head(self, hierarchy300):
        topo, hierarchy = hierarchy300
        for node in list(topo.graph)[:20]:
            address = hierarchy.address(node)
            assert address[0] == node
            top_head = address[-1]
            assert hierarchy.levels[-1].clustering.is_head(top_head) or \
                top_head in hierarchy.levels[-1].topology.graph

    def test_heads_have_shorter_addresses(self, hierarchy300):
        _, hierarchy = hierarchy300
        level0 = hierarchy.physical.clustering
        head = next(iter(level0.heads))
        member = next(n for n in level0.members(head) if n != head)
        assert len(hierarchy.address(head)) <= len(hierarchy.address(member))

    def test_unknown_node_rejected(self, hierarchy300):
        _, hierarchy = hierarchy300
        with pytest.raises(ConfigurationError):
            hierarchy.address("nope")

    def test_common_level_symmetric(self, hierarchy300):
        topo, hierarchy = hierarchy300
        nodes = list(topo.graph)
        a, b = nodes[0], nodes[10]
        assert hierarchy.common_level(a, b) == hierarchy.common_level(b, a)

    def test_same_cluster_common_level_zero(self, hierarchy300):
        _, hierarchy = hierarchy300
        clustering = hierarchy.physical.clustering
        head = max(clustering.heads,
                   key=lambda h: len(clustering.members(h)))
        members = sorted(clustering.members(head), key=repr)[:2]
        assert hierarchy.common_level(members[0], members[1]) == 0


class TestRoutingState:
    def test_member_state_is_cluster_size(self, hierarchy300):
        _, hierarchy = hierarchy300
        clustering = hierarchy.physical.clustering
        head = next(iter(clustering.heads))
        member = next((n for n in clustering.members(head) if n != head),
                      None)
        if member is not None:
            expected = len(clustering.members(head)) - 1
            assert hierarchy.routing_state(member) == expected

    def test_mean_state_well_below_flat(self, hierarchy300):
        topo, hierarchy = hierarchy300
        states = [hierarchy.routing_state(n) for n in topo.graph]
        assert sum(states) / len(states) < 0.5 * (len(topo.graph) - 1)
