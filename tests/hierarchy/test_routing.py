"""Tests for hierarchical routing."""

import math

import pytest

from repro.graph.generators import line_topology, uniform_topology
from repro.graph.graph import Graph
from repro.graph.paths import bfs_distances, is_connected
from repro.hierarchy.hierarchy import build_hierarchy
from repro.hierarchy.routing import (
    UNREACHABLE,
    hierarchical_route,
    route_stretch,
    shortest_path,
)
from repro.util.errors import TopologyError


@pytest.fixture(scope="module")
def connected_hierarchy():
    for seed in range(20):
        topo = uniform_topology(150, 0.15, rng=seed)
        if is_connected(topo.graph):
            return topo, build_hierarchy(topo, rng=seed)
    raise AssertionError("no connected deployment found")


class TestShortestPath:
    def test_trivial(self):
        graph = line_topology(3).graph
        assert shortest_path(graph, 1, 1) == [1]

    def test_on_line(self):
        graph = line_topology(5).graph
        assert shortest_path(graph, 0, 4) == [0, 1, 2, 3, 4]

    def test_disconnected_returns_none(self):
        graph = Graph(nodes=[0, 1])
        assert shortest_path(graph, 0, 1) is None

    def test_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            shortest_path(Graph(nodes=[0]), 0, 9)


class TestHierarchicalRoute:
    def test_routes_are_valid_walks(self, connected_hierarchy):
        topo, hierarchy = connected_hierarchy
        nodes = sorted(topo.graph.nodes)
        pairs = [(nodes[i], nodes[-(i + 1)]) for i in range(10)]
        for source, destination in pairs:
            route = hierarchical_route(hierarchy, source, destination)
            assert route[0] == source
            assert route[-1] == destination
            for a, b in zip(route, route[1:]):
                assert topo.graph.has_edge(a, b), (a, b)

    def test_intra_cluster_route_is_shortest(self, connected_hierarchy):
        topo, hierarchy = connected_hierarchy
        clustering = hierarchy.physical.clustering
        head = max(clustering.heads,
                   key=lambda h: len(clustering.members(h)))
        members = sorted(clustering.members(head), key=repr)
        source, destination = members[0], members[-1]
        route = hierarchical_route(hierarchy, source, destination)
        flat = bfs_distances(topo.graph, source)[destination]
        assert len(route) - 1 >= flat  # cluster-internal may still detour

    def test_same_node_route(self, connected_hierarchy):
        topo, hierarchy = connected_hierarchy
        node = next(iter(topo.graph))
        assert hierarchical_route(hierarchy, node, node) == [node]

    def test_stretch_at_least_one(self, connected_hierarchy):
        topo, hierarchy = connected_hierarchy
        nodes = sorted(topo.graph.nodes)
        for source, destination in [(nodes[0], nodes[-1]),
                                    (nodes[3], nodes[-7])]:
            hops, flat, stretch = route_stretch(hierarchy, source,
                                                destination)
            assert hops >= flat
            assert stretch >= 1.0

    def test_disconnected_pair_returns_sentinel(self):
        from repro.graph.generators import Topology
        graph = Graph(edges=[(0, 1), (2, 3)])
        topo = Topology(graph)
        hierarchy = build_hierarchy(topo, use_dag=False)
        result = route_stretch(hierarchy, 0, 3)
        assert result == UNREACHABLE
        assert all(math.isinf(value) for value in result)

    def test_unknown_destination_raises(self):
        from repro.graph.generators import Topology
        graph = Graph(edges=[(0, 1)])
        hierarchy = build_hierarchy(Topology(graph), use_dag=False)
        with pytest.raises(TopologyError):
            route_stretch(hierarchy, 0, 99)
        with pytest.raises(TopologyError):
            route_stretch(hierarchy, 99, 0)
