"""The lazy request generators: shapes, determinism, bounded memory."""

import itertools
import tracemalloc

import numpy as np
import pytest

from repro.util.errors import ConfigurationError
from repro.workload.generators import (
    READ,
    WRITE,
    Request,
    ZipfPopularity,
    poisson_requests,
    trace_requests,
    ycsb_requests,
)

NODES = list(range(40))


class TestZipfPopularity:
    def test_pmf_sums_to_one_and_decreases(self):
        pmf = ZipfPopularity(NODES, 0.8).pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert (np.diff(pmf) < 0).all()

    def test_alpha_zero_is_uniform(self):
        pmf = ZipfPopularity(NODES, 0.0).pmf()
        assert pmf == pytest.approx(np.full(len(NODES), 1 / len(NODES)))

    def test_sampling_favors_low_ranks(self):
        popularity = ZipfPopularity(NODES, 1.2)
        ranks = popularity.sample_ranks(np.random.default_rng(0), 20000)
        counts = np.bincount(ranks, minlength=len(NODES))
        assert counts[0] > 3 * counts[-1]
        assert counts[0] == pytest.approx(20000 * popularity.pmf()[0],
                                          rel=0.15)

    def test_sample_returns_items(self):
        popularity = ZipfPopularity(["a", "b", "c"], 1.0)
        drawn = popularity.sample(np.random.default_rng(1), 100)
        assert set(drawn) <= {"a", "b", "c"}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity([], 0.8)
        with pytest.raises(ConfigurationError):
            ZipfPopularity(NODES, -0.1)


class TestPoissonRequests:
    def test_yields_exactly_count(self):
        events = list(poisson_requests(NODES, 257, rng=1))
        assert len(events) == 257
        assert all(isinstance(event, Request) for event in events)

    def test_times_increase_across_batches(self):
        # A batch smaller than the count forces the clock to carry over.
        events = list(poisson_requests(NODES, 300, rng=2, batch=64))
        times = [event.time for event in events]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_rate_scales_arrival_times(self):
        slow = list(poisson_requests(NODES, 500, rng=3, rate=10.0))
        fast = list(poisson_requests(NODES, 500, rng=3, rate=1000.0))
        assert slow[-1].time > 20 * fast[-1].time

    def test_endpoints_come_from_nodes(self):
        for event in poisson_requests(NODES, 200, rng=4):
            assert event.source in NODES
            assert event.destination in NODES
            assert event.op == READ and event.size == 1

    def test_equal_seeds_replay_identically(self):
        first = list(poisson_requests(NODES, 100, rng=7))
        second = list(poisson_requests(NODES, 100, rng=7))
        assert first == second

    def test_popularity_skews_destinations(self):
        events = poisson_requests(NODES, 5000, rng=5,
                                  popularity=ZipfPopularity(NODES, 1.2))
        counts = np.bincount([event.destination for event in events],
                             minlength=len(NODES))
        assert counts[0] > 3 * counts[-1]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            list(poisson_requests([], 10))
        with pytest.raises(ConfigurationError):
            list(poisson_requests(NODES, -1))
        with pytest.raises(ConfigurationError):
            list(poisson_requests(NODES, 10, rate=0.0))

    def test_is_lazy(self):
        stream = poisson_requests(NODES, 10**9, rng=6)
        head = list(itertools.islice(stream, 3))
        assert len(head) == 3  # and no 10^9-event list was ever built


class TestYcsbRequests:
    def test_read_write_mix(self):
        events = list(ycsb_requests(NODES, 4000, rng=8, read_fraction=0.95))
        reads = sum(1 for event in events if event.op == READ)
        writes = sum(1 for event in events if event.op == WRITE)
        assert reads + writes == 4000
        assert reads / 4000 == pytest.approx(0.95, abs=0.02)

    def test_extreme_fractions(self):
        assert all(e.op == READ
                   for e in ycsb_requests(NODES, 200, rng=9,
                                          read_fraction=1.0))
        assert all(e.op == WRITE
                   for e in ycsb_requests(NODES, 200, rng=9,
                                          read_fraction=0.0))

    def test_keys_are_zipf_ranked_nodes(self):
        events = list(ycsb_requests(NODES, 5000, rng=10, alpha=1.2))
        counts = np.bincount([event.destination for event in events],
                             minlength=len(NODES))
        assert counts[0] > 3 * counts[-1]

    def test_invalid_read_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            list(ycsb_requests(NODES, 10, read_fraction=1.5))


class TestTraceRequests:
    def test_tuples_become_requests(self):
        events = list(trace_requests([(0.0, 1, 2), (0.5, 2, 3, WRITE, 8)]))
        assert events[0] == Request(time=0.0, source=1, destination=2)
        assert events[1].op == WRITE and events[1].size == 8

    def test_requests_pass_through(self):
        original = Request(time=1.0, source=0, destination=1)
        assert list(trace_requests([original])) == [original]

    def test_time_regression_raises_lazily(self):
        stream = trace_requests([(0.0, 0, 1), (2.0, 1, 2), (1.0, 2, 3)])
        assert next(stream).time == 0.0
        assert next(stream).time == 2.0
        with pytest.raises(ConfigurationError):
            next(stream)


class TestBoundedMemory:
    def test_million_request_schedule_is_o1_memory(self):
        """A 10^6-event schedule must never materialize.

        The first 9x10^5 events run untraced (upfront materialization
        is already excluded by ``test_is_lazy``'s 10^9-event stream);
        tracemalloc then watches the last 10^5.  Any state accumulating
        with the consumed count -- a growing list, a cached schedule --
        allocates megabytes inside the traced window, while batched
        generation allocates only transient per-batch arrays."""
        stream = poisson_requests(range(500), 10**6, rng=11)
        count = sum(1 for _ in itertools.islice(stream, 900_000))
        tracemalloc.start()
        last = None
        for request in stream:
            count += 1
            last = request
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == 10**6
        assert last.time > 0.0
        # 10^5 accumulated events would trace >= 6 MB; the batched
        # generator's peak is a few hundred KB of per-batch arrays.
        assert peak < 4 * 1024 * 1024
