"""The cached router and serving loop: exact equivalence to the
uncached routines, flat-hop accounting, and the sampling contract."""

import pytest

from repro.collectors import (
    CollectorProxy,
    HeadLoadCollector,
    LatencyCollector,
    LinkLoadCollector,
    StretchCollector,
)
from repro.graph.generators import Topology, uniform_topology
from repro.graph.graph import Graph
from repro.graph.paths import is_connected
from repro.hierarchy.hierarchy import build_hierarchy
from repro.hierarchy.routing import hierarchical_route, route_stretch
from repro.util.errors import ConfigurationError
from repro.workload.generators import Request, poisson_requests
from repro.workload.serve import (
    CachedRouter,
    RouterStatsCollector,
    ServedRequest,
    serve_workload,
)


@pytest.fixture(scope="module")
def deployment():
    for seed in range(20):
        topo = uniform_topology(150, 0.15, rng=seed)
        if is_connected(topo.graph):
            return topo, build_hierarchy(topo, rng=seed)
    raise AssertionError("no connected deployment found")


def sample_pairs(topo, count=120):
    nodes = sorted(topo.graph.nodes)
    return [(nodes[(7 * i) % len(nodes)], nodes[(13 * i + 5) % len(nodes)])
            for i in range(count)]


class TestCachedRouter:
    def test_routes_equal_hierarchical_route(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        for source, destination in sample_pairs(topo):
            route, head_path = router.route(source, destination)
            assert route == hierarchical_route(hierarchy, source,
                                               destination)
            assert head_path[0] == \
                hierarchy.physical.clustering.head(source)
            assert head_path[-1] == \
                hierarchy.physical.clustering.head(destination)

    def test_cache_reuse_stays_exact(self, deployment):
        # Serving the same pairs twice must exercise the warm caches
        # and still agree with the cold answers.
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        pairs = sample_pairs(topo, count=40)
        cold = [router.route(s, d) for s, d in pairs]
        warm = [router.route(s, d) for s, d in pairs]
        assert cold == warm

    def test_flat_hops_match_route_stretch(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        for source, destination in sample_pairs(topo, count=30):
            hops, flat, _stretch = route_stretch(hierarchy, source,
                                                 destination)
            assert router.flat_hops(source, destination) == flat
            route, _ = router.route(source, destination)
            assert len(route) - 1 == hops

    def test_flat_cache_eviction_keeps_answers(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy, flat_cache=4)
        pairs = sample_pairs(topo, count=30)
        first = [router.flat_hops(s, d) for s, d in pairs]
        second = [router.flat_hops(s, d) for s, d in pairs]
        assert first == second
        assert len(router._flat) <= 4

    def test_self_route_is_zero_hops(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        node = sorted(topo.graph.nodes)[0]
        served = router.serve(Request(time=0.0, source=node,
                                      destination=node), with_flat=True)
        assert served.route == [node]
        assert served.hops == 0 and served.flat_hops == 0

    def test_disconnected_pair_is_unroutable(self):
        hierarchy = build_hierarchy(
            Topology(Graph(edges=[(0, 1), (2, 3)])), use_dag=False)
        router = CachedRouter(hierarchy)
        served = router.serve(Request(time=0.0, source=0, destination=3))
        assert served == ServedRequest(request=served.request, route=None,
                                       head_path=None, hops=None)


class TestServeWorkload:
    def test_collector_sees_every_request(self, deployment):
        _topo, hierarchy = deployment
        nodes = sorted(hierarchy.physical.topology.graph.nodes)
        proxy = CollectorProxy([LatencyCollector(), StretchCollector()])
        serve_workload(hierarchy, poisson_requests(nodes, 300, rng=1),
                       proxy, flat_every=1)
        results = proxy.results()
        assert results["latency"]["requests"] == 300
        assert results["stretch"]["sampled"] == 300
        assert results["stretch"]["mean"] >= 1.0

    def test_flat_every_samples_stretch_only(self, deployment):
        _topo, hierarchy = deployment
        nodes = sorted(hierarchy.physical.topology.graph.nodes)
        proxy = CollectorProxy([LatencyCollector(), StretchCollector()])
        serve_workload(hierarchy, poisson_requests(nodes, 300, rng=1),
                       proxy, flat_every=7)
        results = proxy.results()
        assert results["latency"]["requests"] == 300  # latency stays exact
        assert results["stretch"]["sampled"] == 43  # ceil(300 / 7)

    def test_flat_every_zero_disables_stretch(self, deployment):
        _topo, hierarchy = deployment
        nodes = sorted(hierarchy.physical.topology.graph.nodes)
        proxy = CollectorProxy([StretchCollector()])
        serve_workload(hierarchy, poisson_requests(nodes, 50, rng=2),
                       proxy, flat_every=0)
        assert proxy.results()["stretch"]["sampled"] == 0

    def test_explicit_router_is_reused(self, deployment):
        _topo, hierarchy = deployment
        nodes = sorted(hierarchy.physical.topology.graph.nodes)
        router = CachedRouter(hierarchy)
        proxy = serve_workload(hierarchy,
                               poisson_requests(nodes, 20, rng=3),
                               CollectorProxy([LatencyCollector()]),
                               router=router)
        assert proxy.results()["latency"]["requests"] == 20
        assert router._leg_paths  # warmed by the serve loop

    def test_unknown_mode_raises(self, deployment):
        _topo, hierarchy = deployment
        with pytest.raises(ConfigurationError):
            serve_workload(hierarchy, [], CollectorProxy([]), mode="stream")


class TestBatchedRouting:
    """route_batch and the batched serving loop: byte-identical streams."""

    def test_route_batch_equals_per_request_serve(self, deployment):
        topo, hierarchy = deployment
        nodes = sorted(topo.graph.nodes)
        requests = list(poisson_requests(nodes, 240, rng=5))
        batch_router = CachedRouter(hierarchy)
        loop_router = CachedRouter(hierarchy)
        served = batch_router.route_batch(requests, flat_every=7,
                                          first_index=3)
        assert len(served) == len(requests)
        for i, request in enumerate(requests):
            reference = loop_router.serve(
                request, with_flat=(3 + i) % 7 == 0, reference=True)
            assert served[i] == reference

    def test_route_reference_equals_route(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        for source, destination in sample_pairs(topo, count=60):
            assert router.route(source, destination) == \
                CachedRouter(hierarchy).route_reference(source, destination)

    def test_serving_modes_end_in_identical_collector_state(self, deployment):
        topo, hierarchy = deployment
        nodes = sorted(topo.graph.nodes)
        heads = hierarchy.physical.clustering.heads

        def proxy():
            return CollectorProxy([
                LatencyCollector(), LinkLoadCollector(),
                HeadLoadCollector(heads), StretchCollector(),
                RouterStatsCollector(),
            ])

        outcomes = {}
        for mode in ("request", "batch"):
            collector = serve_workload(
                hierarchy, poisson_requests(nodes, 400, rng=9), proxy(),
                flat_every=5, mode=mode, batch_size=64)
            outcomes[mode] = collector
        a, b = outcomes["request"], outcomes["batch"]
        assert a.results() == b.results()
        assert a["link_load"].loads == b["link_load"].loads
        assert a["head_load"].loads == b["head_load"].loads
        assert a["stretch"].pairs == b["stretch"].pairs
        assert a["latency"].hops.counts == b["latency"].hops.counts

    def test_route_batch_handles_unroutable_groups(self):
        hierarchy = build_hierarchy(
            Topology(Graph(edges=[(0, 1), (2, 3)])), use_dag=False)
        router = CachedRouter(hierarchy)
        requests = [Request(time=0.0, source=0, destination=3),
                    Request(time=0.1, source=0, destination=1)]
        served = router.route_batch(requests)
        assert served[0].route is None and served[0].hops is None
        assert served[1].route is not None

    def test_route_stretch_matches_uncached(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        for source, destination in sample_pairs(topo, count=40):
            assert router.route_stretch(source, destination) == \
                route_stretch(hierarchy, source, destination)


class TestFlatCacheLRU:
    def test_hit_moves_entry_to_back_of_eviction_queue(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy, flat_cache=2)
        nodes = sorted(topo.graph.nodes)
        a, b, c = nodes[0], nodes[1], nodes[2]
        router.flat_hops(nodes[10], a)   # cache: [a]
        router.flat_hops(nodes[10], b)   # cache: [a, b]
        router.flat_hops(nodes[11], a)   # hit: cache order [b, a]
        router.flat_hops(nodes[10], c)   # evicts b, not a
        assert list(router._flat) == [a, c]
        assert router.flat_hits == 1
        assert router.flat_misses == 3

    def test_flat_cache_stats_ratio(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        nodes = sorted(topo.graph.nodes)
        for _ in range(3):
            router.flat_hops(nodes[4], nodes[9])
        stats = router.flat_cache_stats()
        assert stats == {"hits": 2, "misses": 1, "lookups": 3,
                         "hit_ratio": 2 / 3}


class TestRouterStatsCollector:
    def test_serve_workload_absorbs_router_counters(self, deployment):
        topo, hierarchy = deployment
        nodes = sorted(topo.graph.nodes)
        proxy = CollectorProxy([LatencyCollector(), RouterStatsCollector()])
        serve_workload(hierarchy, poisson_requests(nodes, 200, rng=4),
                       proxy, flat_every=2)
        results = proxy.results()["router"]
        assert results["flat_lookups"] == 100  # every 2nd request sampled
        assert results["flat_hits"] + results["flat_misses"] == 100

    def test_reused_router_counts_only_the_delta(self, deployment):
        topo, hierarchy = deployment
        nodes = sorted(topo.graph.nodes)
        router = CachedRouter(hierarchy)
        router.flat_hops(nodes[0], nodes[1])  # pre-serving traffic
        proxy = CollectorProxy([RouterStatsCollector()])
        serve_workload(hierarchy, poisson_requests(nodes, 50, rng=6),
                       proxy, flat_every=5, router=router)
        assert proxy.results()["router"]["flat_lookups"] == 10

    def test_merge_sums_counters(self):
        left, right = RouterStatsCollector(), RouterStatsCollector()
        left.absorb(3, 1)
        right.absorb(1, 5)
        merged = left.merge(right).results()
        assert merged["flat_hits"] == 4
        assert merged["flat_misses"] == 6
        assert merged["flat_hit_ratio"] == 0.4
