"""The cached router and serving loop: exact equivalence to the
uncached routines, flat-hop accounting, and the sampling contract."""

import pytest

from repro.collectors import CollectorProxy, LatencyCollector, StretchCollector
from repro.graph.generators import Topology, uniform_topology
from repro.graph.graph import Graph
from repro.graph.paths import is_connected
from repro.hierarchy.hierarchy import build_hierarchy
from repro.hierarchy.routing import hierarchical_route, route_stretch
from repro.workload.generators import Request, poisson_requests
from repro.workload.serve import CachedRouter, ServedRequest, serve_workload


@pytest.fixture(scope="module")
def deployment():
    for seed in range(20):
        topo = uniform_topology(150, 0.15, rng=seed)
        if is_connected(topo.graph):
            return topo, build_hierarchy(topo, rng=seed)
    raise AssertionError("no connected deployment found")


def sample_pairs(topo, count=120):
    nodes = sorted(topo.graph.nodes)
    return [(nodes[(7 * i) % len(nodes)], nodes[(13 * i + 5) % len(nodes)])
            for i in range(count)]


class TestCachedRouter:
    def test_routes_equal_hierarchical_route(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        for source, destination in sample_pairs(topo):
            route, head_path = router.route(source, destination)
            assert route == hierarchical_route(hierarchy, source,
                                               destination)
            assert head_path[0] == \
                hierarchy.physical.clustering.head(source)
            assert head_path[-1] == \
                hierarchy.physical.clustering.head(destination)

    def test_cache_reuse_stays_exact(self, deployment):
        # Serving the same pairs twice must exercise the warm caches
        # and still agree with the cold answers.
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        pairs = sample_pairs(topo, count=40)
        cold = [router.route(s, d) for s, d in pairs]
        warm = [router.route(s, d) for s, d in pairs]
        assert cold == warm

    def test_flat_hops_match_route_stretch(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        for source, destination in sample_pairs(topo, count=30):
            hops, flat, _stretch = route_stretch(hierarchy, source,
                                                 destination)
            assert router.flat_hops(source, destination) == flat
            route, _ = router.route(source, destination)
            assert len(route) - 1 == hops

    def test_flat_cache_eviction_keeps_answers(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy, flat_cache=4)
        pairs = sample_pairs(topo, count=30)
        first = [router.flat_hops(s, d) for s, d in pairs]
        second = [router.flat_hops(s, d) for s, d in pairs]
        assert first == second
        assert len(router._flat) <= 4

    def test_self_route_is_zero_hops(self, deployment):
        topo, hierarchy = deployment
        router = CachedRouter(hierarchy)
        node = sorted(topo.graph.nodes)[0]
        served = router.serve(Request(time=0.0, source=node,
                                      destination=node), with_flat=True)
        assert served.route == [node]
        assert served.hops == 0 and served.flat_hops == 0

    def test_disconnected_pair_is_unroutable(self):
        hierarchy = build_hierarchy(
            Topology(Graph(edges=[(0, 1), (2, 3)])), use_dag=False)
        router = CachedRouter(hierarchy)
        served = router.serve(Request(time=0.0, source=0, destination=3))
        assert served == ServedRequest(request=served.request, route=None,
                                       head_path=None, hops=None)


class TestServeWorkload:
    def test_collector_sees_every_request(self, deployment):
        _topo, hierarchy = deployment
        nodes = sorted(hierarchy.physical.topology.graph.nodes)
        proxy = CollectorProxy([LatencyCollector(), StretchCollector()])
        serve_workload(hierarchy, poisson_requests(nodes, 300, rng=1),
                       proxy, flat_every=1)
        results = proxy.results()
        assert results["latency"]["requests"] == 300
        assert results["stretch"]["sampled"] == 300
        assert results["stretch"]["mean"] >= 1.0

    def test_flat_every_samples_stretch_only(self, deployment):
        _topo, hierarchy = deployment
        nodes = sorted(hierarchy.physical.topology.graph.nodes)
        proxy = CollectorProxy([LatencyCollector(), StretchCollector()])
        serve_workload(hierarchy, poisson_requests(nodes, 300, rng=1),
                       proxy, flat_every=7)
        results = proxy.results()
        assert results["latency"]["requests"] == 300  # latency stays exact
        assert results["stretch"]["sampled"] == 43  # ceil(300 / 7)

    def test_flat_every_zero_disables_stretch(self, deployment):
        _topo, hierarchy = deployment
        nodes = sorted(hierarchy.physical.topology.graph.nodes)
        proxy = CollectorProxy([StretchCollector()])
        serve_workload(hierarchy, poisson_requests(nodes, 50, rng=2),
                       proxy, flat_every=0)
        assert proxy.results()["stretch"]["sampled"] == 0

    def test_explicit_router_is_reused(self, deployment):
        _topo, hierarchy = deployment
        nodes = sorted(hierarchy.physical.topology.graph.nodes)
        router = CachedRouter(hierarchy)
        proxy = serve_workload(hierarchy,
                               poisson_requests(nodes, 20, rng=3),
                               CollectorProxy([LatencyCollector()]),
                               router=router)
        assert proxy.results()["latency"]["requests"] == 20
        assert router._leg_paths  # warmed by the serve loop
