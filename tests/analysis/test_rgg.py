"""Tests for the stochastic RGG analysis, validated against simulation."""

import math

import numpy as np
import pytest

from repro.analysis.rgg import (
    LENS_PROBABILITY,
    expected_degree,
    expected_density,
    expected_density_given_degree,
    expected_neighbor_links,
)
from repro.clustering.density import all_densities
from repro.graph.generators import uniform_topology
from repro.util.errors import ConfigurationError


class TestFormulas:
    def test_lens_probability_value(self):
        assert LENS_PROBABILITY == pytest.approx(0.5865, abs=1e-4)

    def test_lens_probability_monte_carlo(self):
        # Two uniform points in a disk of radius 1: P(dist <= 1) ~= p.
        rng = np.random.default_rng(0)
        hits = 0
        trials = 30_000
        for _ in range(2):  # draw in bulk, twice for 2 points
            pass
        radii = np.sqrt(rng.uniform(0, 1, size=(trials, 2)))
        angles = rng.uniform(0, 2 * math.pi, size=(trials, 2))
        xs = radii * np.cos(angles)
        ys = radii * np.sin(angles)
        distances = np.hypot(xs[:, 0] - xs[:, 1], ys[:, 0] - ys[:, 1])
        hits = np.mean(distances <= 1.0)
        assert hits == pytest.approx(LENS_PROBABILITY, abs=0.01)

    def test_expected_degree(self):
        assert expected_degree(1000, 0.1) == pytest.approx(31.42, abs=0.01)

    def test_expected_neighbor_links_scaling(self):
        # Quadratic in mu: doubling lambda quadruples the link count.
        one = expected_neighbor_links(500, 0.1)
        two = expected_neighbor_links(1000, 0.1)
        assert two == pytest.approx(4 * one, rel=1e-9)

    def test_conditional_density_bounds(self):
        assert expected_density_given_degree(0) == 0.0
        assert expected_density_given_degree(1) == 1.0
        assert expected_density_given_degree(5) == \
            pytest.approx(1 + 2 * LENS_PROBABILITY)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_degree(0, 0.1)
        with pytest.raises(ConfigurationError):
            expected_density(100, 0)
        with pytest.raises(ConfigurationError):
            expected_density_given_degree(-1)


class TestAgainstSimulation:
    @pytest.fixture(scope="class")
    def deployment(self):
        return uniform_topology(2000, 0.1, rng=11)

    def _interior(self, topology, margin):
        return [n for n, (x, y) in topology.positions.items()
                if margin <= x <= 1 - margin and margin <= y <= 1 - margin]

    def test_interior_degree_matches(self, deployment):
        interior = self._interior(deployment, 0.1)
        measured = np.mean([deployment.graph.degree(n) for n in interior])
        assert measured == pytest.approx(expected_degree(2000, 0.1),
                                         rel=0.08)

    def test_interior_density_matches(self, deployment):
        interior = self._interior(deployment, 0.1)
        densities = all_densities(deployment.graph)
        measured = np.mean([densities[n] for n in interior])
        assert measured == pytest.approx(expected_density(2000, 0.1),
                                         rel=0.08)

    def test_conditional_density_matches_per_degree(self, deployment):
        interior = self._interior(deployment, 0.1)
        densities = all_densities(deployment.graph)
        by_degree = {}
        for node in interior:
            by_degree.setdefault(deployment.graph.degree(node),
                                 []).append(densities[node])
        checked = 0
        for degree, values in by_degree.items():
            if len(values) < 30:
                continue
            measured = float(np.mean(values))
            assert measured == pytest.approx(
                expected_density_given_degree(degree), rel=0.1)
            checked += 1
        assert checked >= 3
