"""The distributed backend: protocol, checkpointing, faults, determinism.

The load-bearing property mirrors the engine suite: for a fixed seed the
distributed backend must reduce to *byte-identical* tables no matter how
many workers serve the run, which chunks land where, or which workers
die mid-stream.  Fault injection runs both in-process (protocol-level
mute/drain workers) and against real ``python -m repro worker``
subprocesses (SIGKILL mid-chunk, SIGTERM graceful drain, checkpoint
resume after a torn journal).
"""

import os
import signal
import socket
import threading
import time

import pytest

from repro.experiments.common import get_preset
from repro.experiments.distributed.checkpoint import (
    CheckpointJournal,
    CheckpointMismatch,
)
from repro.experiments.distributed.coordinator import (
    Coordinator,
    DistributedError,
    DistributedExecutor,
)
from repro.experiments.distributed.protocol import (
    CHUNK,
    HELLO,
    ConnectionClosed,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from repro.experiments.distributed.worker import Worker
from repro.experiments.engine import use_executor
from repro.experiments.mobility import run_mobility_experiment
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.util.errors import ReproError

QUICK = get_preset("quick")


# Module-level task functions (workers pickle them by qualified name; the
# in-process worker threads unpickle them from this very module).

def _square(task):
    return task * task


def _slow_square(task):
    time.sleep(0.05)
    return task * task


def _explode_on_three(task):
    if task == 3:
        raise ValueError("task 3 exploded")
    return task


def _endpoint(coordinator):
    host, port = coordinator.address
    return f"{host}:{port}"


def _start_thread_worker(coordinator, name=None):
    """An in-process worker serving ``coordinator`` from a daemon thread."""
    worker = Worker(_endpoint(coordinator), heartbeat_interval=0.05,
                    name=name)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class TestProtocol:
    def test_frame_roundtrip(self):
        left, right = socket.socketpair()
        try:
            payloads = [("hello", "w1"), ("chunk", 3, _square, [1, 2]),
                        ("blob", b"x" * (3 << 20)), ("heartbeat",)]
            for payload in payloads:
                # Send from a thread: a multi-megabyte frame overflows the
                # socketpair buffer, so the reader must run concurrently.
                sender = threading.Thread(
                    target=send_frame, args=(left, payload))
                sender.start()
                received = recv_frame(right)
                sender.join()
                assert received[0] == payload[0]
                assert received[-1] == payload[-1]
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_closed(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_frame(right)
        finally:
            right.close()

    def test_locked_send_interleaves_cleanly(self):
        left, right = socket.socketpair()
        lock = threading.Lock()
        try:
            threads = [threading.Thread(
                target=lambda i=i: send_frame(
                    left, ("msg", i, b"p" * 70_000), lock))
                for i in range(8)]
            for thread in threads:
                thread.start()
            seen = {recv_frame(right)[1] for _ in range(8)}
            assert seen == set(range(8))
            for thread in threads:
                thread.join()
        finally:
            left.close()
            right.close()

    def test_parse_endpoint(self):
        assert parse_endpoint("host:5555") == ("host", 5555)
        assert parse_endpoint(("1.2.3.4", 9)) == ("1.2.3.4", 9)
        assert parse_endpoint("lonehost") == ("lonehost", 0)
        with pytest.raises(ReproError):
            parse_endpoint("host:not-a-port")


class TestCheckpointJournal:
    META = {"label": "toy", "index": 0, "tasks": 6, "chunk_size": 1}

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "toy.journal")
        with CheckpointJournal.open(path, self.META) as journal:
            assert journal.completed == {}
            journal.record(0, [10])
            journal.record(2, [30])
        with CheckpointJournal.open(path, self.META) as journal:
            assert journal.completed == {0: [10], 2: [30]}

    def test_torn_tail_is_dropped_and_overwritten(self, tmp_path):
        path = str(tmp_path / "toy.journal")
        with CheckpointJournal.open(path, self.META) as journal:
            journal.record(0, [10])
            journal.record(1, [20])
        intact = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x00\x01torn-half-written-record")
        with CheckpointJournal.open(path, self.META) as journal:
            assert journal.completed == {0: [10], 1: [20]}
            journal.record(2, [30])
        assert os.path.getsize(path) > intact
        with CheckpointJournal.open(path, self.META) as journal:
            assert journal.completed == {0: [10], 1: [20], 2: [30]}

    def test_meta_mismatch_is_rejected(self, tmp_path):
        path = str(tmp_path / "toy.journal")
        CheckpointJournal.open(path, self.META).close()
        other = dict(self.META, tasks=7)
        with pytest.raises(CheckpointMismatch):
            CheckpointJournal.open(path, other)


class TestCoordinator:
    def test_results_in_submission_order(self):
        with Coordinator(heartbeat_timeout=2.0, worker_wait=10.0) as coord:
            for index in range(3):
                _start_thread_worker(coord, name=f"w{index}")
            assert coord.wait_for_workers(3, timeout=5)
            tasks = list(range(17))
            results = coord.submit_all(tasks, _slow_square, chunk_size=1)
            assert results == [task * task for task in tasks]
            # A second submission reuses the same connected workers.
            assert coord.submit_all([5, 6], _square) == [25, 36]

    def test_empty_submission(self):
        with Coordinator(worker_wait=1.0) as coord:
            assert coord.submit_all([], _square) == []

    def test_chunked_submission(self):
        with Coordinator(worker_wait=10.0) as coord:
            _start_thread_worker(coord)
            assert coord.wait_for_workers(1, timeout=5)
            results = coord.submit_all(list(range(10)), _square,
                                       chunk_size=4)
            assert results == [task * task for task in range(10)]

    def test_worker_exception_reraises_original_type(self):
        with Coordinator(worker_wait=10.0) as coord:
            _start_thread_worker(coord)
            assert coord.wait_for_workers(1, timeout=5)
            with pytest.raises(ValueError, match="task 3 exploded") as info:
                coord.submit_all(list(range(6)), _explode_on_three)
            assert isinstance(info.value.__cause__, DistributedError)
            # The coordinator stays usable for the next submission.
            assert coord.submit_all([2], _square) == [4]

    def test_unpicklable_chunk_fails_fast_without_killing_workers(self):
        """A run function that cannot be pickled is a submission error,
        not a worker failure: the real exception surfaces immediately and
        the worker stays registered for the next submission."""
        with Coordinator(worker_wait=10.0) as coord:
            _start_thread_worker(coord)
            assert coord.wait_for_workers(1, timeout=5)
            with pytest.raises(Exception) as info:
                coord.submit_all([1, 2], lambda task: task)
            assert "pickle" in str(info.value).lower() \
                or "lambda" in str(info.value).lower()
            assert coord.worker_count == 1
            assert coord.submit_all([3], _square) == [9]

    def test_mismatched_heartbeat_settings_rejected(self):
        with pytest.raises(ReproError, match="heartbeat_interval"):
            DistributedExecutor(workers=0, heartbeat_interval=6.0,
                                heartbeat_timeout=10.0)

    def test_no_workers_fails_loudly(self):
        with Coordinator(worker_wait=0.3) as coord:
            with pytest.raises(DistributedError, match="no workers"):
                coord.submit_all([1, 2, 3], _square)

    def test_dropped_heartbeat_requeues_onto_survivor(self):
        """A worker that claims a chunk and goes mute times out; its
        chunk is re-queued onto the surviving worker."""
        with Coordinator(heartbeat_timeout=0.4, worker_wait=10.0) as coord:
            mute = socket.create_connection(coord.address)
            try:
                send_frame(mute, (HELLO, "mute"))
                assert coord.wait_for_workers(1, timeout=5)
                _start_thread_worker(coord, name="good")
                assert coord.wait_for_workers(2, timeout=5)
                claimed = {}

                def sit_on_chunk():
                    message = recv_frame(mute)
                    claimed["message"] = message
                    # ... and never answer, never heartbeat.

                listener = threading.Thread(target=sit_on_chunk, daemon=True)
                listener.start()
                tasks = list(range(8))
                results = coord.submit_all(tasks, _slow_square, chunk_size=1)
                assert results == [task * task for task in tasks]
                assert claimed["message"][0] == CHUNK
                assert coord.worker_count == 1  # the mute one was retired
            finally:
                mute.close()

    def test_graceful_drain_loses_nothing(self):
        with Coordinator(heartbeat_timeout=2.0, worker_wait=10.0) as coord:
            draining, _ = _start_thread_worker(coord, name="draining")
            _start_thread_worker(coord, name="staying")
            assert coord.wait_for_workers(2, timeout=5)
            tasks = list(range(24))
            stop = threading.Timer(0.15, draining.request_drain)
            stop.start()
            try:
                results = coord.submit_all(tasks, _slow_square, chunk_size=1)
            finally:
                stop.cancel()
            assert results == [task * task for task in tasks]

    def test_resume_skips_journaled_chunks(self, tmp_path):
        """Chunks found in the journal are trusted verbatim (the marker
        results prove they were not re-executed); the torn tail chunk is
        re-run."""
        meta = {"label": "toy", "index": 0, "tasks": 6, "chunk_size": 1}
        path = str(tmp_path / "toy-0000.journal")
        with CheckpointJournal.open(path, meta) as journal:
            journal.record(0, ["marker-0"])
            journal.record(1, ["marker-1"])
        with open(path, "ab") as handle:
            handle.write(b"torn!")  # crash mid-append of chunk 2
        with Coordinator(worker_wait=10.0) as coord:
            _start_thread_worker(coord)
            assert coord.wait_for_workers(1, timeout=5)
            with CheckpointJournal.open(path, meta) as journal:
                assert set(journal.completed) == {0, 1}
                results = coord.submit_all(list(range(6)), _square,
                                           chunk_size=1, journal=journal)
        assert results == ["marker-0", "marker-1", 4, 9, 16, 25]
        with CheckpointJournal.open(path, meta) as journal:
            assert set(journal.completed) == {0, 1, 2, 3, 4, 5}


@pytest.fixture(scope="module")
def serial_tables():
    """Serial-oracle tables shared by the determinism assertions."""
    return {
        "table2": str(run_table2(QUICK, rng=2024, jobs=1)),
        "table4": str(run_table4(QUICK, rng=2024, jobs=1)),
        "mobility": str(run_mobility_experiment(QUICK, rng=2024, runs=2,
                                                jobs=1)),
    }


def _run_family(name):
    if name == "table2":
        return str(run_table2(QUICK, rng=2024))
    if name == "table4":
        return str(run_table4(QUICK, rng=2024))
    return str(run_mobility_experiment(QUICK, rng=2024, runs=2))


class TestBackendDeterminism:
    """table2/table4/mobility quick presets: serial == pool == distributed."""

    @pytest.mark.parametrize("family", ["table2", "table4", "mobility"])
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_pool_matches_serial(self, serial_tables, family, jobs):
        if family == "table2":
            table = run_table2(QUICK, rng=2024, jobs=jobs)
        elif family == "table4":
            table = run_table4(QUICK, rng=2024, jobs=jobs)
        else:
            table = run_mobility_experiment(QUICK, rng=2024, runs=2,
                                            jobs=jobs)
        assert str(table) == serial_tables[family]

    def test_distributed_matches_serial(self, serial_tables):
        with DistributedExecutor(workers=2, heartbeat_interval=0.2) \
                as executor, use_executor(executor):
            for family in ("table2", "table4", "mobility"):
                assert _run_family(family) == serial_tables[family]

    def test_worker_killed_mid_stream_matches_serial(self, serial_tables):
        """SIGKILL one of two real worker processes mid-run: its chunk is
        re-queued and the reduced table is still byte-identical."""
        with DistributedExecutor(workers=2, heartbeat_interval=0.2,
                                 heartbeat_timeout=2.0) as executor, \
                use_executor(executor):
            executor.start()
            victim = executor._processes[0]
            # Let both workers register so the victim is actually
            # streaming chunks when the SIGKILL lands.
            assert executor._coordinator.wait_for_workers(2, timeout=15)
            killer = threading.Timer(0.3, victim.kill)
            killer.start()
            try:
                table = _run_family("table4")
            finally:
                killer.cancel()
            victim.wait(timeout=10)
            assert victim.returncode is not None
            assert table == serial_tables["table4"]

    def test_worker_sigterm_drains_gracefully(self, serial_tables):
        """SIGTERM (graceful drain) on a real worker process: it finishes
        its chunk, announces the drain, and exits cleanly."""
        with DistributedExecutor(workers=2, heartbeat_interval=0.2) \
                as executor, use_executor(executor):
            executor.start()
            victim = executor._processes[0]
            # Only signal once both workers are registered: registration
            # happens after the worker installed its SIGTERM handler, so
            # the signal cannot land during interpreter startup.
            assert executor._coordinator.wait_for_workers(2, timeout=15)
            stopper = threading.Timer(
                0.2, lambda: victim.send_signal(signal.SIGTERM))
            stopper.start()
            try:
                table = _run_family("table2")
            finally:
                stopper.cancel()
            assert table == serial_tables["table2"]
            assert victim.wait(timeout=10) == 0

    def test_checkpoint_resume_after_torn_journal(self, serial_tables,
                                                  tmp_path):
        """Interrupt a checkpointed run (simulated by tearing the journal
        tail), then resume with a fresh executor: journaled chunks are
        not re-executed and the table equals the serial oracle."""
        checkpoint = str(tmp_path / "ckpt")
        with DistributedExecutor(workers=2, heartbeat_interval=0.2,
                                 checkpoint=checkpoint) as executor, \
                use_executor(executor):
            first = _run_family("table2")
        assert first == serial_tables["table2"]
        journals = sorted(os.listdir(checkpoint))
        assert journals == ["table2-0000.journal"]
        path = os.path.join(checkpoint, journals[0])
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 7)  # tear the tail
        with DistributedExecutor(workers=2, heartbeat_interval=0.2,
                                 checkpoint=checkpoint) as executor, \
                use_executor(executor):
            resumed = _run_family("table2")
        assert resumed == serial_tables["table2"]


class TestDistributedExecutor:
    def test_workers_zero_waits_for_external_workers(self):
        executor = DistributedExecutor(workers=0, worker_wait=10.0)
        try:
            host, port = executor.start()
            worker = Worker(f"{host}:{port}", heartbeat_interval=0.05)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            results = executor.submit_all([1, 2, 3], _square)
            assert results == [1, 4, 9]
        finally:
            executor.close()

    def test_checkpoint_meta_guards_workload_changes(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        executor = DistributedExecutor(workers=0, checkpoint=checkpoint,
                                       worker_wait=10.0)
        try:
            host, port = executor.start()
            worker = Worker(f"{host}:{port}", heartbeat_interval=0.05)
            threading.Thread(target=worker.run, daemon=True).start()
            assert executor.submit_all([1, 2], _square, label="toy") \
                == [1, 4]
        finally:
            executor.close()
        # A different task count under the same label+index must refuse
        # to splice the stale journal.
        executor = DistributedExecutor(workers=0, checkpoint=checkpoint,
                                       worker_wait=10.0)
        try:
            with pytest.raises(CheckpointMismatch):
                executor.submit_all([1, 2, 3], _square, label="toy")
        finally:
            executor.close()
        # So must the same *shape* with different task content (e.g. the
        # same command line re-run under a different seed): the journal
        # meta binds the task digest, not just the count.
        executor = DistributedExecutor(workers=0, checkpoint=checkpoint,
                                       worker_wait=10.0)
        try:
            with pytest.raises(CheckpointMismatch):
                executor.submit_all([5, 6], _square, label="toy")
        finally:
            executor.close()
