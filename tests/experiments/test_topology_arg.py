"""Tests for the ``--topology`` plumbing across experiment families."""

import warnings

import pytest

from repro.experiments.comparison import run_comparison
from repro.experiments.common import matched_mean_degree, resolve_topology_spec
from repro.experiments.overhead import run_reaffiliation_churn
from repro.experiments.robustness import DEFAULT_SPECS, run_robustness
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.workload import run_workload
from repro.graph.dynamic import DynamicUnitDisk
from repro.graph.generators import (
    poisson_topology,
    uniform_topology,
)
from repro.graph.geometry import pairs_within_range
from repro.graph.models import build_topology_spec
from repro.util.errors import ConfigurationError

import numpy as np


class TestResolveTopologySpec:
    def test_fills_count_and_matched_degree(self):
        spec = resolve_topology_spec("erdos_renyi", count=200, radius=0.1)
        params = spec.param_dict()
        assert params["count"] == 200
        assert params["degree"] == round(matched_mean_degree(200, 0.1), 4)

    def test_explicit_parameters_win(self):
        spec = resolve_topology_spec("erdos_renyi:count=50,p=0.2",
                                     count=200, radius=0.1)
        params = spec.param_dict()
        assert params["count"] == 50
        assert params["p"] == 0.2
        assert "degree" not in params  # p pins the degree already

    def test_degree_param_metadata_blocks_conflict(self):
        # nw_small_world's k pins mean degree; its p (rewiring) does not.
        spec = resolve_topology_spec("nw_small_world:k=3",
                                     count=200, radius=0.1)
        assert "degree" not in spec.param_dict()
        spec = resolve_topology_spec("nw_small_world:p=0.3",
                                     count=200, radius=0.1)
        assert "degree" in spec.param_dict()

    def test_geometric_family_gets_radius(self):
        spec = resolve_topology_spec("uniform", count=150, radius=0.12)
        assert spec.param_dict() == {"count": 150, "radius": 0.12}

    def test_resolved_spec_builds(self):
        spec = resolve_topology_spec("scale_free", count=100, radius=0.1)
        topology = build_topology_spec(spec, rng=3)
        assert len(topology.graph) == 100


class TestComparisonFamily:
    def test_jobs_do_not_change_the_table(self):
        tables = [run_robustness(("erdos_renyi", "scale_free"),
                                 preset="smoke", rng=11, runs=1, jobs=jobs,
                                 samples=4)
                  for jobs in (1, 2)]
        assert str(tables[0]) == str(tables[1])

    def test_comparison_delegates_when_topologies_given(self):
        direct = run_robustness(("erdos_renyi",), preset="smoke", rng=5,
                                runs=1, jobs=1)
        via_comparison = run_comparison(preset="smoke", rng=5, runs=1,
                                        topology=("erdos_renyi",))
        assert str(direct) == str(via_comparison)

    def test_default_sweep_covers_four_families(self):
        assert len(DEFAULT_SPECS) >= 4

    def test_rows_per_topology_and_metric(self):
        table = run_robustness(("erdos_renyi",), preset="smoke", rng=5,
                               runs=1, jobs=1, samples=4)
        assert str(table).count("erdos_renyi") == 4  # one row per metric


class TestSingleTopologyFamilies:
    def test_table1_on_registered_generator(self):
        table, exact = run_table1(topology="ring:count=5")
        assert exact is False
        assert "ring" in str(table)

    def test_table1_default_still_exact(self):
        _table, exact = run_table1()
        assert exact is True

    def test_table2_deterministic_across_jobs(self):
        tables = [run_table2(preset="smoke", rng=9, jobs=jobs,
                             topology="erdos_renyi")
                  for jobs in (1, 2)]
        assert str(tables[0]) == str(tables[1])

    def test_churn_resampling_mode(self):
        table = run_reaffiliation_churn(preset="smoke", rng=3, runs=1,
                                        topology="scale_free")
        assert "total resampling" in str(table)

    def test_workload_rejects_mobility_with_topology(self):
        with pytest.raises(ConfigurationError, match="mobility"):
            run_workload(preset="smoke", kinds=("mobility",),
                         topology="erdos_renyi")

    def test_workload_smoke_on_small_world(self):
        tables = run_workload(preset="smoke", rng=4,
                              kinds=("uniform",),
                              topology="nw_small_world")
        assert tables


class TestGeometryGuards:
    def test_dynamic_unit_disk_requires_radius(self):
        # A combinatorial topology carries radius=None; forwarding it
        # must fail with a clear message, not a TypeError downstream.
        topology = build_topology_spec("erdos_renyi:count=30,degree=3,seed=1")
        with pytest.raises(ConfigurationError, match="radius"):
            DynamicUnitDisk(np.zeros((30, 2)), topology.radius)

    def test_pairs_within_range_requires_radius(self):
        with pytest.raises(ConfigurationError, match="radius"):
            pairs_within_range(np.zeros((3, 2)), None)


class TestDeprecationShims:
    def test_positional_rng_warns_once(self):
        import repro.graph.generators as generators
        generators._POSITIONAL_RNG_WARNED.discard("uniform_topology")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            a = uniform_topology(20, 0.2, 5)
            b = uniform_topology(20, 0.2, 5)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "rng=" in str(deprecations[0].message)
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_positional_matches_keyword(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            positional = poisson_topology(50, 0.1, 7)
        keyword = poisson_topology(50, 0.1, rng=7)
        assert set(positional.graph.edges) == set(keyword.graph.edges)

    def test_conflicting_positional_and_keyword_rng(self):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                uniform_topology(20, 0.2, 5, rng=6)
