"""The benchmark regression gate: completeness, floors, normalization."""

import importlib.util
import json
import os

import pytest

GATE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, os.pardir, "benchmarks",
                         "regression_gate.py")
spec = importlib.util.spec_from_file_location("regression_gate", GATE_PATH)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def artifact(tmp_path, name, means, extras=None):
    if extras is None:
        extras = full_extras()
    path = tmp_path / name
    payload = {"benchmarks": [{"name": bench, "stats": {"mean": mean},
                               "extra_info": extras.get(bench, {})}
                              for bench, mean in means.items()]}
    path.write_text(json.dumps(payload))
    return str(path)


def full_means(scale=1.0, **overrides):
    means = {name: 0.010 * scale for name in gate.REQUIRED}
    # Keep every structural floor satisfied by default (slow 5x fast).
    for slow, _fast, _floor, _description in gate.SPEEDUP_FLOORS:
        means[slow] = 0.050 * scale
    means.update(overrides)
    return means


def full_extras(scale=1.0):
    # p99 latency is hop counts -- machine speed never moves it.
    extras = {name: {"requests_per_sec": 50_000.0 / scale,
                     "p99_latency_hops": 30.0}
              for name in gate.WORKLOAD_BENCHES}
    # Scale throughput keys normalize like the serving throughput.
    for name, key in gate.SCALE_BENCHES.items():
        extras.setdefault(name, {})[key] = 40_000.0 / scale
    return extras


class TestCompleteness:
    def test_empty_artifact_fails(self, tmp_path):
        current = artifact(tmp_path, "current.json", {})
        baseline = artifact(tmp_path, "base.json", full_means())
        assert gate.main([baseline, current]) == 1

    def test_missing_hot_path_fails(self, tmp_path):
        means = full_means()
        means.pop("test_bench_bfs_distances[5000]")
        current = artifact(tmp_path, "current.json", means)
        baseline = artifact(tmp_path, "base.json", full_means())
        assert gate.main([baseline, current]) == 1


class TestFloorsAndRegressions:
    def test_identical_artifacts_pass(self, tmp_path, capsys):
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means())
        assert gate.main([baseline, current]) == 0
        out = capsys.readouterr().out
        assert "delta" in out  # the sorted table printed

    def test_speedup_floor_violation_fails(self, tmp_path):
        means = full_means()
        means["test_bench_mobility_windows_delta[5000]"] = \
            means["test_bench_mobility_windows_rebuild[5000]"]
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", means)
        assert gate.main([baseline, current]) == 1

    def test_regression_over_threshold_fails(self, tmp_path, capsys):
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(
            **{"test_bench_bfs_distances[5000]": 0.010 * 1.5}))
        assert gate.main([baseline, current]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_slow_machine_is_not_a_regression(self, tmp_path):
        """A uniformly 2x-slower machine scales the calibration bench
        too, so normalized deltas stay flat and the gate passes."""
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(scale=2.0))
        assert gate.main([baseline, current]) == 0

    def test_code_regression_on_slow_machine_still_fails(self, tmp_path):
        means = full_means(scale=2.0)
        means["test_bench_bfs_distances[5000]"] *= 1.4
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", means)
        assert gate.main([baseline, current]) == 1

    def test_stale_baseline_is_not_vacuous(self, tmp_path, capsys):
        """Hot paths missing from the *baseline* fail the gate instead of
        being silently skipped."""
        base_means = full_means()
        base_means.pop("test_bench_bfs_distances[5000]")
        baseline = artifact(tmp_path, "base.json", base_means)
        current = artifact(tmp_path, "current.json", full_means())
        assert gate.main([baseline, current]) == 1
        assert "baseline artifact is missing" in capsys.readouterr().err

    def test_threshold_is_configurable(self, tmp_path):
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(
            **{"test_bench_bfs_distances[5000]": 0.010 * 1.2}))
        assert gate.main([baseline, current]) == 0  # 20% < default 25%
        assert gate.main([baseline, current, "--threshold", "0.1"]) == 1


class TestWorkloadKeys:
    def test_missing_extra_info_fails(self, tmp_path, capsys):
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(),
                           extras={})
        assert gate.main([baseline, current]) == 1
        assert "missing extra_info" in capsys.readouterr().err

    def test_stale_baseline_extras_fail(self, tmp_path, capsys):
        baseline = artifact(tmp_path, "base.json", full_means(), extras={})
        current = artifact(tmp_path, "current.json", full_means())
        assert gate.main([baseline, current]) == 1
        assert "regenerate BENCH_baseline.json" in capsys.readouterr().err

    def test_throughput_regression_fails(self, tmp_path, capsys):
        extras = full_extras()
        bench = gate.WORKLOAD_BENCHES[0]
        extras[bench] = dict(extras[bench], requests_per_sec=25_000.0)
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(),
                           extras=extras)
        assert gate.main([baseline, current]) == 1
        assert "throughput regressed" in capsys.readouterr().err

    def test_slow_machine_throughput_is_normalized(self, tmp_path):
        """Half the requests/sec on a calibrated 2x-slower machine is
        expected, not a regression."""
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(scale=2.0),
                           extras=full_extras(scale=2.0))
        assert gate.main([baseline, current]) == 0

    def test_p99_latency_regression_fails(self, tmp_path, capsys):
        extras = full_extras()
        bench = gate.WORKLOAD_BENCHES[-1]
        extras[bench] = dict(extras[bench], p99_latency_hops=45.0)
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(),
                           extras=extras)
        assert gate.main([baseline, current]) == 1
        assert "p99 latency regressed" in capsys.readouterr().err

    def test_p99_latency_is_compared_raw(self, tmp_path):
        """Machine speed must never excuse a latency (hop-count) change."""
        extras = full_extras(scale=2.0)
        bench = gate.WORKLOAD_BENCHES[0]
        extras[bench] = dict(extras[bench], p99_latency_hops=45.0)
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(scale=2.0),
                           extras=extras)
        assert gate.main([baseline, current]) == 1


class TestScaleKeys:
    def test_missing_scale_key_fails(self, tmp_path, capsys):
        extras = full_extras()
        bench = next(iter(gate.SCALE_BENCHES))
        extras[bench] = {}
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(),
                           extras=extras)
        assert gate.main([baseline, current]) == 1
        assert "missing extra_info key" in capsys.readouterr().err

    def test_throughput_regression_fails(self, tmp_path, capsys):
        extras = full_extras()
        bench, key = next(iter(gate.SCALE_BENCHES.items()))
        extras[bench] = dict(extras[bench], **{key: 20_000.0})
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(),
                           extras=extras)
        assert gate.main([baseline, current]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_slow_machine_build_rate_is_normalized(self, tmp_path):
        baseline = artifact(tmp_path, "base.json", full_means())
        current = artifact(tmp_path, "current.json", full_means(scale=2.0),
                           extras=full_extras(scale=2.0))
        assert gate.main([baseline, current]) == 0


def test_load_means_reads_benchmark_json(tmp_path):
    path = artifact(tmp_path, "a.json", {"x": 0.5})
    assert gate.load_means(path) == {"x": pytest.approx(0.5)}


def test_load_extra_reads_benchmark_json(tmp_path):
    path = artifact(tmp_path, "a.json", {"x": 0.5},
                    extras={"x": {"requests_per_sec": 9.0}})
    assert gate.load_extra(path) == {"x": {"requests_per_sec": 9.0}}
