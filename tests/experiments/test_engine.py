"""Tests for the parallel experiment engine.

The load-bearing property: for a fixed seed, ``run_experiment`` produces
*identical* output for every ``jobs`` value -- the pool fan-out must be
invisible in the results.  Verified here on the engine itself (with a toy
spec) and end-to-end on several real experiment families.
"""

import pytest

from repro.experiments.common import Preset
from repro.experiments.comparison import run_comparison
from repro.experiments.energy_lifetime import run_energy_lifetime
from repro.experiments.engine import (
    Executor,
    ExperimentSpec,
    PoolExecutor,
    SerialExecutor,
    get_default_executor,
    make_executor,
    map_runs,
    resolve_jobs,
    run_experiment,
    use_executor,
)
from repro.experiments.mobility import run_mobility_experiment
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.util.errors import ConfigurationError

TINY = Preset(name="tiny", runs=3, intensity=150, mobility_nodes=60,
              mobility_duration=8.0, mobility_window=2.0)


# Module-level toy spec pieces (workers pickle `run` by qualified name).

def _toy_build(preset, rng, options):
    return list(range(options["tasks"]))


def _toy_run(task):
    return task * task


def _toy_reduce(preset, tasks, results, options):
    return {"tasks": list(tasks), "results": list(results)}


TOY_SPEC = ExperimentSpec(name="toy", build=_toy_build, run=_toy_run,
                          reduce=_toy_reduce)


class TestResolveJobs:
    def test_explicit_counts_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs("3") == 3

    def test_auto_values_use_all_cores(self):
        expected = resolve_jobs("auto")
        assert expected >= 1
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == expected
        assert resolve_jobs("0") == expected  # argparse/pytest pass strings

    def test_invalid_values_rejected(self):
        for bad in (-1, "-2", "many", 1.5):
            with pytest.raises(ConfigurationError):
                resolve_jobs(bad)


class TestMapRuns:
    def test_serial_executes_in_order(self):
        assert map_runs(_toy_run, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_preserves_order(self):
        tasks = list(range(20))
        assert map_runs(_toy_run, tasks, jobs=4) == \
            map_runs(_toy_run, tasks, jobs=1)

    def test_empty_and_single_task(self):
        assert map_runs(_toy_run, [], jobs=4) == []
        assert map_runs(_toy_run, [5], jobs=4) == [25]


class TestRunExperiment:
    def test_reducer_sees_tasks_and_ordered_results(self):
        outcome = run_experiment(TOY_SPEC, tasks=4)
        assert outcome == {"tasks": [0, 1, 2, 3], "results": [0, 1, 4, 9]}

    def test_preset_resolution(self):
        def build(preset, rng, options):
            return [preset.runs]

        def reduce(preset, tasks, results, options):
            return results[0]

        spec = ExperimentSpec(name="p", build=build, run=_toy_run,
                              reduce=reduce)
        assert run_experiment(spec, "smoke") == 4  # smoke preset: 2 runs

    def test_rejects_non_spec(self):
        with pytest.raises(ConfigurationError):
            run_experiment(lambda: None)


class _RecordingExecutor(Executor):
    """Serial executor that records every submission it served."""

    name = "recording"

    def __init__(self):
        self.labels = []
        self.closed = False

    def submit_all(self, tasks, run, label=None):
        self.labels.append(label)
        return [run(task) for task in tasks]

    def close(self):
        self.closed = True


class TestExecutorSeam:
    def test_make_executor_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        pool = make_executor("pool", jobs=3)
        assert isinstance(pool, PoolExecutor)
        assert pool.jobs == 3
        with pytest.raises(ConfigurationError):
            make_executor("carrier-pigeon")

    def test_make_executor_passes_instances_through(self):
        executor = SerialExecutor()
        assert make_executor(executor) is executor

    def test_serial_and_pool_match_jobs_path(self):
        tasks = list(range(12))
        expected = map_runs(_toy_run, tasks, jobs=1)
        assert SerialExecutor().submit_all(tasks, _toy_run) == expected
        assert PoolExecutor(jobs=3).submit_all(tasks, _toy_run) == expected

    def test_backend_argument_routes_through_executor(self):
        serial = run_experiment(TOY_SPEC, tasks=5)
        assert run_experiment(TOY_SPEC, tasks=5, backend="serial") == serial
        assert run_experiment(TOY_SPEC, tasks=5, backend="pool",
                              jobs=2) == serial

    def test_ambient_executor_is_used_and_restored(self):
        recording = _RecordingExecutor()
        with use_executor(recording):
            assert get_default_executor() is recording
            outcome = run_experiment(TOY_SPEC, tasks=3)
        assert outcome["results"] == [0, 1, 4]
        assert recording.labels == ["toy"]
        assert get_default_executor() is None
        assert not recording.closed  # ambient executors are caller-owned

    def test_explicit_executor_beats_ambient(self):
        ambient = _RecordingExecutor()
        explicit = _RecordingExecutor()
        with use_executor(ambient):
            run_experiment(TOY_SPEC, tasks=2, executor=explicit)
        assert explicit.labels == ["toy"]
        assert ambient.labels == []

    def test_executor_context_manager_closes(self):
        recording = _RecordingExecutor()
        with recording as executor:
            assert executor is recording
        assert recording.closed


class TestJobsDeterminism:
    """jobs=1 and jobs>1 must regenerate identical tables (fixed seed)."""

    def test_table3(self):
        serial = run_table3(TINY, radii=(0.1,), rng=11, jobs=1)
        parallel = run_table3(TINY, radii=(0.1,), rng=11, jobs=4)
        assert str(serial) == str(parallel)

    def test_table4(self):
        serial = run_table4(TINY, radii=(0.15,), rng=12, jobs=1)
        parallel = run_table4(TINY, radii=(0.15,), rng=12, jobs=4)
        assert str(serial) == str(parallel)

    def test_table5(self):
        serial = run_table5(TINY, radii=(0.18,), rng=13, jobs=1)
        parallel = run_table5(TINY, radii=(0.18,), rng=13, jobs=3)
        assert str(serial) == str(parallel)

    def test_comparison(self):
        serial = run_comparison(TINY, regime="pedestrian", radius=0.3,
                                rng=14, runs=2, jobs=1)
        parallel = run_comparison(TINY, regime="pedestrian", radius=0.3,
                                  rng=14, runs=2, jobs=2)
        assert str(serial) == str(parallel)

    def test_mobility(self):
        serial = run_mobility_experiment(TINY, radius=0.3, rng=15, runs=2,
                                         jobs=1)
        parallel = run_mobility_experiment(TINY, radius=0.3, rng=15, runs=2,
                                           jobs=4)
        assert str(serial) == str(parallel)

    def test_energy_lifetime(self):
        serial = run_energy_lifetime(nodes=80, windows=40, runs=2, rng=16,
                                     jobs=1)
        parallel = run_energy_lifetime(nodes=80, windows=40, runs=2, rng=16,
                                       jobs=2)
        assert str(serial) == str(parallel)


class TestSerialPathMatchesHistoricalLoops:
    """The builders spawn per-run RNGs in the historical order, so the
    engine's serial path must be a pure refactor of the old loops."""

    def test_table4_statistics_are_seed_stable(self):
        # Two independent invocations agree cell-for-cell (regression
        # anchor for the builder's RNG spawn order).
        first = run_table4(TINY, radii=(0.15, 0.2), rng=99)
        second = run_table4(TINY, radii=(0.15, 0.2), rng=99)
        assert first.rows == second.rows

    def test_jobs_does_not_leak_into_titles(self):
        serial = run_table3(TINY, radii=(0.1,), rng=5, jobs=1)
        parallel = run_table3(TINY, radii=(0.1,), rng=5, jobs=2)
        assert serial.title == parallel.title
        assert serial.headers == parallel.headers
