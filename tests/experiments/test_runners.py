"""Smoke and shape tests for the experiment runners (tiny presets)."""

import numpy as np
import pytest

from repro.experiments.common import Preset, get_preset
from repro.experiments.comparison import run_comparison
from repro.experiments.mobility import run_mobility_trace
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.util.errors import ConfigurationError

TINY = Preset(name="tiny", runs=2, intensity=150, mobility_nodes=60,
              mobility_duration=8.0, mobility_window=2.0)


class TestPresets:
    def test_lookup_by_name(self):
        assert get_preset("quick").name == "quick"
        assert get_preset("paper").runs == 1000

    def test_pass_through_instance(self):
        assert get_preset(TINY) is TINY

    def test_overrides(self):
        preset = get_preset("quick", runs=3)
        assert preset.runs == 3
        assert preset.name == "quick"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            get_preset("enormous")


class TestTable1:
    def test_exact_reproduction(self):
        table, exact = run_table1()
        assert exact
        assert len(table.rows) == 9


class TestTable2:
    def test_schedule_matches_paper(self):
        table = run_table2(TINY, radius=0.25, rng=0)
        measured = table.column("measured step")
        assert measured[0] == 1.0   # neighbors at step 1
        assert measured[1] == 2.0   # density at step 2
        assert measured[2] == 3.0   # father at step 3
        assert measured[3] >= 3.0   # head needs the tree depth on top


class TestTable3:
    def test_rows_and_range(self):
        table = run_table3(TINY, radii=(0.1,), rng=1)
        assert len(table.rows) == 1
        for column in ("grid", "random"):
            value = table.column(column)[0]
            assert 1.0 <= value <= 5.0  # the paper's ~2-step regime


class TestTable4:
    def test_dag_indifference_on_random_graphs(self):
        # On random deployments the DAG barely matters: cluster counts are
        # within a factor well below the grid pathology's 10x+ gap.
        table = run_table4(get_preset(TINY, runs=4), radii=(0.15,), rng=2)
        clusters = table.column("#clusters")
        assert abs(clusters[0] - clusters[1]) <= 0.5 * max(clusters)


class TestTable5:
    def test_grid_collapse_without_dag(self):
        # R chosen for the tiny grid's spacing (~0.09): 0.18 gives the
        # 8-neighborhood-plus regime of the paper's scenario.
        table = run_table5(TINY, radii=(0.18,), rng=3)
        rows = {row[1]: row for row in table.rows}
        assert rows["no"][2] <= 3          # near-single cluster
        assert rows["with"][2] >= 5        # many clusters with DAG
        assert rows["no"][4] > rows["with"][4]  # much deeper trees


class TestMobility:
    def test_improved_beats_basic(self):
        outcome = run_mobility_trace("vehicular", TINY, radius=0.3, rng=4)
        assert outcome.retention_percent["improved"] >= \
            outcome.retention_percent["basic"] - 5.0
        assert 0 <= outcome.retention_percent["basic"] <= 100

    @pytest.mark.parametrize("regime", ["pedestrian", "vehicular"])
    def test_delta_and_rebuild_runs_are_bit_identical(self, regime):
        delta = run_mobility_trace(regime, TINY, radius=0.3, rng=7,
                                   dynamics="delta")
        rebuild = run_mobility_trace(regime, TINY, radius=0.3, rng=7,
                                     dynamics="rebuild")
        assert delta == rebuild

    def test_unknown_dynamics_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mobility_trace("pedestrian", TINY, radius=0.3, rng=7,
                               dynamics="telepathy")

    def test_empty_windows_are_recorded_as_skipped(self):
        class EmptyThenSome:
            """0 nodes for two windows, then a fixed 3-node deployment."""

            def __init__(self):
                self.calls = 0
                self.positions = np.zeros((0, 2))

            def advance(self, _dt):
                self.calls += 1
                if self.calls >= 2:
                    self.positions = np.array(
                        [[0.1, 0.1], [0.15, 0.1], [0.9, 0.9]])

        for dynamics in ("delta", "rebuild"):
            outcome = run_mobility_trace(
                "pedestrian", TINY, radius=0.3, rng=8,
                model_factory=lambda count, speeds, rng: EmptyThenSome(),
                dynamics=dynamics)
            assert outcome.windows == 4
            assert outcome.skipped == 2

    def test_pedestrian_more_stable_than_vehicular(self):
        slow = run_mobility_trace("pedestrian", TINY, radius=0.3, rng=5)
        fast = run_mobility_trace("vehicular", TINY, radius=0.3, rng=5)
        assert slow.retention_percent["improved"] >= \
            fast.retention_percent["improved"]


class TestChurnDynamics:
    def test_delta_and_rebuild_epochs_are_bit_identical(self):
        from repro.experiments.churn import run_churn_epochs
        for leave, arrive in ((0.0, 0.0), (0.1, 4.0)):
            delta = run_churn_epochs(30, 0.25, leave, arrive, epochs=5,
                                     rng=14, dynamics="delta")
            rebuild = run_churn_epochs(30, 0.25, leave, arrive, epochs=5,
                                       rng=14, dynamics="rebuild")
            assert delta == rebuild

    def test_unknown_dynamics_rejected(self):
        from repro.experiments.churn import run_churn_epochs
        with pytest.raises(ConfigurationError):
            run_churn_epochs(10, 0.25, 0.1, 1.0, epochs=1, rng=1,
                             dynamics="teleport")


class TestComparison:
    def test_all_metrics_reported(self):
        table = run_comparison(TINY, regime="pedestrian", radius=0.3, rng=6)
        names = table.column("metric")
        assert set(names) == {"density", "degree", "lowest-id",
                              "max-min (d=2)"}
        for value in table.column("% heads retained / window"):
            assert 0.0 <= value <= 100.0
