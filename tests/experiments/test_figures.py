"""Tests for the figure runners and stabilization experiments."""

from repro.experiments.figures import run_figure1, run_figure2, run_figure3
from repro.experiments.stabilization_time import (
    cold_boot_steps,
    run_recovery_experiment,
    run_scaling_experiment,
)
from repro.experiments.common import Preset


class TestFigures:
    def test_figure1_heads(self):
        result = run_figure1()
        assert result.clustering.heads == {"h", "j"}
        # Two clusters render as symbols a/b with uppercase heads.
        assert "A" in result.rendering and "B" in result.rendering
        assert "2 clusters" in result.legend

    def test_figure2_single_cluster(self):
        result = run_figure2(nodes=100, radius=0.18)
        assert result.clustering.cluster_count <= 2

    def test_figure3_many_clusters(self):
        result = run_figure3(nodes=100, radius=0.18, rng=0)
        assert result.clustering.cluster_count >= 4

    def test_renderings_are_multiline(self):
        result = run_figure2(nodes=64, radius=0.2)
        assert len(result.rendering.splitlines()) > 5


class TestStabilizationExperiments:
    def test_cold_boot_converges_both_ways(self):
        for use_dag in (False, True):
            report = cold_boot_steps(5, use_dag, rng=1)
            assert report.converged

    def test_dag_bounds_growth(self):
        # The headline claim: with the DAG, stabilization on the
        # adversarial grid does not grow linearly with the side.
        small = cold_boot_steps(4, True, rng=2)
        large = cold_boot_steps(10, True, rng=3)
        assert large.steps <= small.steps + 14

    def test_no_dag_grows_with_side(self):
        small = cold_boot_steps(4, False, rng=4)
        large = cold_boot_steps(12, False, rng=5)
        assert large.steps > small.steps

    def test_scaling_experiment_table(self):
        table = run_scaling_experiment(sides=(4, 6), runs=1, rng=6)
        assert len(table.rows) == 2

    def test_recovery_experiment_converges(self):
        preset = Preset(name="t", runs=1, intensity=0, mobility_nodes=0,
                        mobility_duration=0, mobility_window=1)
        table = run_recovery_experiment(preset, side=5, rng=7)
        assert all(flag == "yes" for flag in table.column("all converged"))
