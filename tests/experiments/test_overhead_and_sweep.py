"""Tests for the overhead and intensity-sweep experiments."""

from repro.experiments.common import Preset
from repro.experiments.intensity_sweep import interior_nodes, \
    run_intensity_sweep
from repro.experiments.overhead import run_beacon_cost, \
    run_reaffiliation_churn
from repro.graph.generators import uniform_topology

TINY = Preset(name="tiny", runs=2, intensity=150, mobility_nodes=100,
              mobility_duration=10.0, mobility_window=2.0)


class TestIntensitySweep:
    def test_density_heads_fall_with_intensity(self):
        table = run_intensity_sweep(intensities=(300, 1200), radius=0.1,
                                    runs=3, rng=1)
        heads = table.column("density heads")
        assert heads[-1] < heads[0]

    def test_degree_heads_grow_with_intensity(self):
        table = run_intensity_sweep(intensities=(300, 1200), radius=0.1,
                                    runs=3, rng=2)
        heads = table.column("degree heads")
        assert heads[-1] > heads[0]

    def test_measured_density_near_prediction(self):
        table = run_intensity_sweep(intensities=(1000,), radius=0.1,
                                    runs=3, rng=3)
        measured = table.column("interior density")[0]
        predicted = table.column("predicted density")[0]
        assert abs(measured - predicted) / predicted < 0.15

    def test_interior_nodes_helper(self):
        topo = uniform_topology(200, 0.1, rng=4)
        interior = interior_nodes(topo, margin=0.2)
        for node in interior:
            x, y = topo.positions[node]
            assert 0.2 <= x <= 0.8
            assert 0.2 <= y <= 0.8


class TestOverheadExperiments:
    def test_churn_reported_for_all_metrics(self):
        table = run_reaffiliation_churn(TINY, radius=0.25, rng=5, runs=1)
        assert len(table.rows) == 4
        for value in table.column("re-affiliations / window / 100 nodes"):
            assert 0.0 <= value <= 100.0

    def test_beacon_cost_orders_configurations(self):
        table = run_beacon_cost(nodes=80, steps=10, rng=6)
        costs = dict(zip(table.column("configuration"),
                         table.column("bytes / node / step")))
        # The DAG adds one shared variable; fusion adds the summary.
        assert costs["DAG, basic"] > costs["no DAG, basic"]
        assert costs["DAG, fusion"] > 2 * costs["DAG, basic"]
