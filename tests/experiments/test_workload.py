"""The ``repro workload`` experiment family: determinism across
backends, chunk invariance, report shape, and the CLI path."""

import pytest

from repro.cli import main
from repro.experiments.workload import (
    REQUESTS_BY_PRESET,
    WORKLOAD_KINDS,
    WorkloadReport,
    run_workload,
)
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def smoke_report():
    return run_workload("smoke", rng=2024)


class TestRunWorkload:
    def test_report_covers_every_kind(self, smoke_report):
        assert isinstance(smoke_report, WorkloadReport)
        assert set(smoke_report.results) == set(WORKLOAD_KINDS)
        for kind in WORKLOAD_KINDS:
            latency = smoke_report.results[kind]["latency"]
            assert latency["requests"] == REQUESTS_BY_PRESET["smoke"]

    def test_tables_render(self, smoke_report):
        text = str(smoke_report)
        assert "Serving latency" in text
        assert "Link load" in text
        assert "Cluster-head load" in text
        for kind in WORKLOAD_KINDS:
            assert kind in text

    def test_pool_jobs_match_serial(self, smoke_report):
        pooled = run_workload("smoke", rng=2024, jobs=2)
        assert str(pooled) == str(smoke_report)
        assert pooled.results == smoke_report.results

    def test_chunk_count_does_not_change_results(self, smoke_report):
        # The chunk split is part of the spec (it fixes RNG streams and
        # stretch sampling), so equality here is with the same chunks;
        # a *different* chunking is a different sampling plan but must
        # still count every request.
        rechunked = run_workload("smoke", rng=2024, chunks=3)
        for kind in WORKLOAD_KINDS:
            assert rechunked.results[kind]["latency"]["requests"] == \
                REQUESTS_BY_PRESET["smoke"]

    def test_kind_subset_and_requests_override(self):
        report = run_workload("smoke", rng=7, kinds=("uniform",),
                              requests=250)
        assert list(report.results) == ["uniform"]
        assert report.results["uniform"]["latency"]["requests"] == 250

    def test_zipf_concentrates_head_load(self):
        report = run_workload("quick", rng=2024,
                              kinds=("uniform", "zipf-hot"), requests=4000)
        uniform = report.results["uniform"]["head_load"]
        skewed = report.results["zipf-hot"]["head_load"]
        # The paper-extension claim: destination skew concentrates load
        # on fewer cluster-heads, so Jain's fairness index drops.  (The
        # max/mean factor is less monotone -- under uniform traffic the
        # hottest head is already a transit hub -- so only fairness is
        # asserted.)
        assert skewed["jain"] < uniform["jain"]
        assert uniform["imbalance"] > 1.0 and skewed["imbalance"] > 1.0

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError):
            run_workload("smoke", kinds=("nope",))
        with pytest.raises(ConfigurationError):
            run_workload("smoke", requests=0)


class TestWorkloadCli:
    def test_workload_listed(self, capsys):
        assert main(["list"]) == 0
        assert "workload" in capsys.readouterr().out

    def test_smoke_run_prints_tables(self, capsys):
        assert main(["workload", "--preset", "smoke", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "Serving latency" in out
        assert "mobility" in out

    def test_backend_flag_matches_default(self, capsys):
        assert main(["workload", "--preset", "smoke", "--seed", "9"]) == 0
        default_out = capsys.readouterr().out
        assert main(["workload", "--preset", "smoke", "--seed", "9",
                     "--backend", "pool", "--jobs", "2"]) == 0
        pooled_out = capsys.readouterr().out
        assert pooled_out == default_out
