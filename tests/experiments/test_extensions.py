"""Tests for the extension experiments (scalability, energy lifetime)."""

from repro.experiments.energy_lifetime import run_energy_lifetime
from repro.experiments.scalability import run_scalability


class TestScalability:
    def test_hierarchical_state_beats_flat(self):
        table = run_scalability(sizes=(120, 240), pairs=10, rng=1)
        flat = table.column("flat state")
        hier = table.column("hier state")
        for f, h in zip(flat, hier):
            assert h < f

    def test_savings_reported(self):
        table = run_scalability(sizes=(150,), pairs=10, rng=2)
        assert table.column("savings x")[0] > 1.5
        assert table.column("mean stretch")[0] >= 1.0


class TestEnergyLifetime:
    def test_energy_aware_delays_first_death(self):
        table = run_energy_lifetime(nodes=120, windows=60, runs=2, rng=3)
        rows = {row[0]: row for row in table.rows}
        assert rows["energy-aware"][1] > rows["static"][1]

    def test_rotation_costs_head_changes(self):
        table = run_energy_lifetime(nodes=120, windows=60, runs=2, rng=4)
        rows = {row[0]: row for row in table.rows}
        assert rows["energy-aware"][4] >= rows["static"][4]
