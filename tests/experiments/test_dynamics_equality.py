"""Delta-stream runs reproduce the rebuild runs byte for byte.

The acceptance bar for the incremental engines: every mobility-driven
experiment must render the *identical* report whether its windows come
from :func:`~repro.experiments.metric_windows.metric_windows` in
``delta`` mode (incremental engines over the edge-delta stream) or in
``rebuild`` mode (per-window scratch clusterings), at every ``jobs``
value.  These tests pin that on the smoke preset.
"""

import pytest

from repro.experiments.comparison import run_comparison
from repro.experiments.metric_windows import (
    METRIC_ENGINES,
    METRIC_SCRATCH,
    check_dynamics,
    metric_windows,
)
from repro.experiments.overhead import run_reaffiliation_churn
from repro.experiments.workload import run_workload
from repro.mobility import RandomWaypointModel
from repro.util.errors import ConfigurationError


class TestCheckDynamics:
    def test_known_modes_pass_through(self):
        assert check_dynamics("delta") == "delta"
        assert check_dynamics("rebuild") == "rebuild"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            check_dynamics("clairvoyant")

    def test_metric_tables_agree(self):
        assert set(METRIC_SCRATCH) == set(METRIC_ENGINES)


class TestMetricWindows:
    def test_delta_equals_rebuild_per_window(self):
        model = RandomWaypointModel(40, (0.5, 1.5), rng=7)
        snapshots = [model.positions.copy()]
        for _ in range(4):
            model.advance(2.0)
            snapshots.append(model.positions.copy())
        rebuilt = list(metric_windows(snapshots, 0.18, dynamics="rebuild"))
        streamed = list(metric_windows(snapshots, 0.18, dynamics="delta"))
        assert len(rebuilt) == len(streamed) == len(snapshots)
        for want, got in zip(rebuilt, streamed):
            assert set(want) == set(got)
            for name in want:
                assert got[name].heads == want[name].heads, name
                assert got[name].parents == want[name].parents, name


@pytest.mark.parametrize("jobs", [1, 2])
class TestRunnersByteIdentical:
    def test_comparison(self, jobs):
        kwargs = dict(preset="smoke", rng=5, jobs=jobs)
        delta = run_comparison(dynamics="delta", **kwargs)
        rebuild = run_comparison(dynamics="rebuild", **kwargs)
        assert delta.formatted() == rebuild.formatted()

    def test_reaffiliation_churn(self, jobs):
        kwargs = dict(preset="smoke", rng=5, jobs=jobs)
        delta = run_reaffiliation_churn(dynamics="delta", **kwargs)
        rebuild = run_reaffiliation_churn(dynamics="rebuild", **kwargs)
        assert delta.formatted() == rebuild.formatted()

    def test_workload_mobility(self, jobs):
        kwargs = dict(preset="smoke", rng=5, jobs=jobs,
                      kinds=("mobility",), requests=400)
        delta = run_workload(dynamics="delta", **kwargs)
        rebuild = run_workload(dynamics="rebuild", **kwargs)
        assert str(delta) == str(rebuild)
