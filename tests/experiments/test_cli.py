"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_listed(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.preset == "quick"
        assert args.seed == 2024

    def test_preset_and_seed_flags(self):
        args = build_parser().parse_args(
            ["table3", "--preset", "smoke", "--seed", "7"])
        assert args.preset == "smoke"
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "exact match with the paper: True" in out

    def test_figure1_runs(self, capsys):
        assert main(["figure1"]) == 0
        assert "2 clusters" in capsys.readouterr().out

    def test_table3_smoke_preset(self, capsys):
        assert main(["table3", "--preset", "smoke", "--seed", "1"]) == 0
        assert "Table 3" in capsys.readouterr().out
