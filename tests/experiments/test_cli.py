"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_listed(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.preset == "quick"
        assert args.seed == 2024

    def test_preset_and_seed_flags(self):
        args = build_parser().parse_args(
            ["table3", "--preset", "smoke", "--seed", "7"])
        assert args.preset == "smoke"
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestBackendFlags:
    def test_backend_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.backend is None
        assert args.workers is None
        assert args.bind == "127.0.0.1:0"
        assert args.checkpoint is None

    def test_backend_choices(self):
        args = build_parser().parse_args(
            ["table2", "--backend", "distributed", "--workers", "3",
             "--bind", "0.0.0.0:5555", "--checkpoint", "/tmp/ckpt"])
        assert args.backend == "distributed"
        assert args.workers == 3
        assert args.bind == "0.0.0.0:5555"
        assert args.checkpoint == "/tmp/ckpt"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--backend", "smoke-signal"])

    def test_worker_mode_requires_connect(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker"])
        capsys.readouterr()

    def test_backend_serial_runs_experiment(self, capsys):
        assert main(["table3", "--preset", "smoke", "--seed", "1",
                     "--backend", "serial"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_backend_pool_matches_serial_stdout(self, capsys):
        assert main(["table3", "--preset", "smoke", "--seed", "1",
                     "--backend", "serial"]) == 0
        serial = capsys.readouterr().out
        assert main(["table3", "--preset", "smoke", "--seed", "1",
                     "--backend", "pool", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "exact match with the paper: True" in out

    def test_figure1_runs(self, capsys):
        assert main(["figure1"]) == 0
        assert "2 clusters" in capsys.readouterr().out

    def test_table3_smoke_preset(self, capsys):
        assert main(["table3", "--preset", "smoke", "--seed", "1"]) == 0
        assert "Table 3" in capsys.readouterr().out
