"""Tests for the churn process and dynamic node sets in the runtime."""

import pytest

from repro.mobility.churn import ChurnProcess
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.stabilization.monitor import steps_to_legitimacy
from repro.stabilization.predicates import make_stack_predicate
from repro.util.errors import ConfigurationError


class TestChurnProcess:
    def test_initial_population(self):
        process = ChurnProcess(20, 0.2, 0.1, 2.0, rng=1)
        assert len(process) == 20
        assert set(process.population) == set(range(20))

    def test_epoch_departures_and_arrivals(self):
        process = ChurnProcess(50, 0.2, 0.3, 5.0, rng=2)
        departed, arrived = process.epoch()
        assert set(departed).isdisjoint(process.population)
        assert set(arrived) <= set(process.population)
        # Fresh identifiers are never reused.
        assert all(node >= 50 for node in arrived)

    def test_zero_churn_is_stationary(self):
        process = ChurnProcess(30, 0.2, 0.0, 0.0, rng=3)
        before = dict(process.population)
        departed, arrived = process.epoch()
        assert departed == [] and arrived == []
        assert process.population == before

    def test_population_never_empties(self):
        process = ChurnProcess(3, 0.2, 1.0, 0.0, rng=4)
        for _ in range(5):
            process.epoch()
            assert len(process) >= 1

    def test_topology_snapshot(self):
        process = ChurnProcess(25, 0.3, 0.1, 2.0, rng=5)
        topo = process.topology()
        assert set(topo.graph.nodes) == set(process.population)
        topo.graph.check_symmetry()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnProcess(0, 0.2, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            ChurnProcess(5, 0.2, 1.5, 1.0)
        with pytest.raises(ConfigurationError):
            ChurnProcess(5, 0.2, 0.1, -1.0)

    def test_bare_epoch_rejected_once_dynamics_attached(self):
        process = ChurnProcess(10, 0.3, 0.2, 1.0, rng=32)
        process.epoch()  # fine before any dynamic view exists
        process.dynamics()
        with pytest.raises(ConfigurationError):
            process.epoch()
        process.epoch_update()  # the sanctioned path still works

    def test_dynamics_tracks_scratch_across_epochs(self):
        # Two processes with identical RNG streams: one rebuilds every
        # epoch, the other maintains the delta topology.  Graphs, node
        # order, positions, and CSR layout must match bit for bit.
        scratch = ChurnProcess(25, 0.3, 0.2, 4.0, rng=31)
        delta = ChurnProcess(25, 0.3, 0.2, 4.0, rng=31)
        delta.dynamics()
        for _ in range(6):
            scratch.epoch()
            update = delta.epoch_update()
            reference = scratch.topology()
            maintained = update.topology
            assert maintained.graph.nodes == reference.graph.nodes
            assert {frozenset(e) for e in maintained.graph.edges} == \
                {frozenset(e) for e in reference.graph.edges}
            assert maintained.positions == reference.positions
            ours, theirs = (maintained.graph.to_csr(),
                            reference.graph.to_csr())
            assert ours.ids == theirs.ids
            assert (ours.indptr == theirs.indptr).all()
            assert (ours.indices == theirs.indices).all()


class TestDynamicNodeSets:
    def test_set_topology_adds_and_removes_runtimes(self):
        process = ChurnProcess(30, 0.25, 0.3, 5.0, rng=6)
        sim = StepSimulator(process.topology(), standard_stack(namespace=200),
                            rng=7)
        sim.run(5)
        departed, arrived = process.epoch()
        sim.set_topology(process.topology())
        for node in departed:
            assert node not in sim.runtimes
        for node in arrived:
            assert node in sim.runtimes

    def test_survivors_keep_their_state(self):
        process = ChurnProcess(30, 0.25, 0.2, 3.0, rng=8)
        sim = StepSimulator(process.topology(), standard_stack(namespace=200),
                            rng=9)
        sim.run(10)
        survivors_before = {node: dict(sim.runtime(node).shared)
                            for node in sim.runtimes}
        process.epoch()
        sim.set_topology(process.topology())
        for node in set(sim.runtimes) & set(survivors_before):
            assert sim.runtime(node).shared == survivors_before[node]

    def test_replace_topology_still_strict(self):
        process = ChurnProcess(10, 0.3, 0.5, 2.0, rng=10)
        sim = StepSimulator(process.topology(), standard_stack(namespace=100),
                            rng=11)
        process.epoch()
        with pytest.raises(ConfigurationError):
            sim.replace_topology(process.topology())

    def test_stack_relegitimizes_after_churn(self):
        process = ChurnProcess(35, 0.25, 0.0, 0.0, rng=12)
        sim = StepSimulator(process.topology(), standard_stack(namespace=300),
                            rng=13)
        predicate = make_stack_predicate()
        assert steps_to_legitimacy(sim, predicate, 200).converged
        process.leave_probability = 0.2
        process.arrival_rate = 6.0
        process.epoch()
        sim.set_topology(process.topology())
        report = steps_to_legitimacy(sim, predicate, 200)
        assert report.converged
