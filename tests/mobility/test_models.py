"""Tests for the mobility models."""

import numpy as np
import pytest

from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.random_waypoint import RandomWaypointModel
from repro.util.errors import ConfigurationError


ALL_MODELS = [
    lambda **kw: RandomDirectionModel(speed_range=(0.0, 0.05), **kw),
    lambda **kw: RandomWaypointModel(speed_range=(0.0, 0.05), **kw),
]


@pytest.mark.parametrize("factory", ALL_MODELS)
class TestCommonBehaviour:
    def test_initial_positions_inside_square(self, factory):
        model = factory(count=50, rng=1)
        assert np.all(model.positions >= 0.0)
        assert np.all(model.positions <= 1.0)

    def test_positions_stay_inside_after_motion(self, factory):
        model = factory(count=50, rng=2)
        for _ in range(30):
            model.advance(5.0)
        assert np.all(model.positions >= 0.0)
        assert np.all(model.positions <= 1.0)

    def test_zero_dt_is_noop(self, factory):
        model = factory(count=10, rng=3)
        before = model.positions.copy()
        model.advance(0.0)
        assert np.allclose(model.positions, before)

    def test_negative_dt_rejected(self, factory):
        model = factory(count=10, rng=3)
        with pytest.raises(ConfigurationError):
            model.advance(-1.0)

    def test_motion_actually_happens(self, factory):
        model = factory(count=40, rng=4)
        before = model.positions.copy()
        model.advance(10.0)
        moved = np.hypot(*(model.positions - before).T)
        assert np.mean(moved) > 0.0

    def test_same_seed_same_trajectory(self, factory):
        a = factory(count=20, rng=9)
        b = factory(count=20, rng=9)
        a.advance(7.0)
        b.advance(7.0)
        assert np.allclose(a.positions, b.positions)

    def test_displacement_bounded_by_max_speed(self, factory):
        model = factory(count=30, rng=5)
        before = model.positions.copy()
        model.advance(2.0)
        moved = np.hypot(*(model.positions - before).T)
        # Max speed 0.05/s for 2 s = 0.1 (reflection only shortens paths).
        assert np.all(moved <= 0.1 + 1e-9)

    def test_rejects_bad_speed_range(self, factory):
        with pytest.raises(ConfigurationError):
            RandomDirectionModel(10, speed_range=(0.5, 0.1))
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(10, speed_range=(-0.1, 0.1))

    def test_rejects_empty_population(self, factory):
        with pytest.raises(ConfigurationError):
            factory(count=0)


class TestRandomDirection:
    def test_zero_speed_nodes_never_move(self):
        model = RandomDirectionModel(10, speed_range=(0.0, 0.0), rng=1)
        before = model.positions.copy()
        model.advance(100.0)
        assert np.allclose(model.positions, before)

    def test_leg_redraws_change_direction(self):
        model = RandomDirectionModel(1, speed_range=(0.02, 0.02),
                                     mean_leg_duration=1.0, rng=7)
        v0 = model._velocities.copy()
        model.advance(50.0)  # ~50 leg changes
        assert not np.allclose(model._velocities, v0)

    def test_rejects_bad_leg_duration(self):
        with pytest.raises(ConfigurationError):
            RandomDirectionModel(5, speed_range=(0, 0.1),
                                 mean_leg_duration=0.0)


class TestRandomWaypoint:
    def test_pause_consumes_time(self):
        model = RandomWaypointModel(1, speed_range=(10.0, 10.0), pause=1000.0,
                                    rng=2)
        # Reach the first waypoint almost instantly, then pause ~forever.
        model.advance(5.0)
        paused_at = model.positions.copy()
        model.advance(5.0)
        assert np.allclose(model.positions, paused_at)

    def test_arrival_redraws_target(self):
        model = RandomWaypointModel(1, speed_range=(5.0, 5.0), rng=3)
        first_target = model._targets.copy()
        model.advance(10.0)  # plenty of time to arrive several times
        assert not np.allclose(model._targets, first_target)

    def test_rejects_negative_pause(self):
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(5, speed_range=(0, 0.1), pause=-1.0)
