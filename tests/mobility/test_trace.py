"""Tests for mobility traces and per-window topologies."""

import numpy as np
import pytest

from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import Trace, TraceFrame, record_trace, topology_at
from repro.util.errors import ConfigurationError


class TestTopologyAt:
    def test_builds_unit_disk(self):
        positions = [(0.0, 0.0), (0.05, 0.0), (0.9, 0.9)]
        topo = topology_at(positions, radius=0.1)
        assert topo.graph.has_edge(0, 1)
        assert not topo.graph.has_edge(0, 2)

    def test_stable_ids_across_snapshots(self):
        a = topology_at([(0, 0), (1, 1)], radius=0.1, ids=["u", "v"])
        b = topology_at([(0.2, 0), (1, 0.8)], radius=0.1, ids=["u", "v"])
        assert set(a.graph.nodes) == set(b.graph.nodes) == {"u", "v"}


class TestRecordTrace:
    def test_frame_count_and_times(self):
        model = RandomDirectionModel(10, speed_range=(0, 0.01), rng=1)
        trace = record_trace(model, duration=10.0, window=2.0)
        assert len(trace) == 6  # t = 0, 2, 4, 6, 8, 10
        assert [f.time for f in trace] == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_frames_are_position_copies(self):
        model = RandomDirectionModel(5, speed_range=(0.01, 0.02), rng=2)
        trace = record_trace(model, duration=4.0, window=2.0)
        assert not np.allclose(trace.frames[0].positions,
                               trace.frames[-1].positions)

    def test_topologies_iterate_with_times(self):
        model = RandomDirectionModel(5, speed_range=(0, 0.01), rng=3)
        trace = record_trace(model, duration=4.0, window=2.0)
        snapshots = list(trace.topologies(radius=0.3))
        assert len(snapshots) == 3
        time, topo = snapshots[0]
        assert time == 0.0
        assert len(topo.graph) == 5

    def test_rejects_bad_window(self):
        model = RandomDirectionModel(5, speed_range=(0, 0.01), rng=4)
        with pytest.raises(ConfigurationError):
            record_trace(model, duration=4.0, window=0.0)

    def test_delta_replay_matches_rebuild(self):
        model = RandomDirectionModel(25, speed_range=(0.005, 0.02), rng=5)
        trace = record_trace(model, duration=10.0, window=2.0)
        rebuilt = list(trace.topologies(radius=0.25))
        replayed = trace.topologies(radius=0.25, dynamics="delta")
        for (t_a, a), (t_b, b) in zip(rebuilt, replayed):
            assert t_a == t_b
            assert a.graph.nodes == b.graph.nodes
            assert {frozenset(e) for e in a.graph.edges} == \
                {frozenset(e) for e in b.graph.edges}
            assert a.positions == b.positions

    def test_rejects_unknown_dynamics(self):
        model = RandomDirectionModel(5, speed_range=(0, 0.01), rng=6)
        trace = record_trace(model, duration=2.0, window=2.0)
        with pytest.raises(ConfigurationError):
            list(trace.topologies(radius=0.2, dynamics="psychic"))


class TestTrace:
    def test_requires_frames(self):
        with pytest.raises(ConfigurationError):
            Trace([])

    def test_requires_time_order(self):
        frames = [TraceFrame(time=1.0, positions=np.zeros((2, 2))),
                  TraceFrame(time=0.0, positions=np.zeros((2, 2)))]
        with pytest.raises(ConfigurationError):
            Trace(frames)

    def test_iteration(self):
        frames = [TraceFrame(time=0.0, positions=np.zeros((2, 2)))]
        assert [f.time for f in Trace(frames)] == [0.0]
