"""Tests for the constant name space."""

import pytest

from repro.naming.namespace import NameSpace, recommended_size
from repro.util.errors import ConfigurationError


class TestNameSpace:
    def test_contains(self):
        space = NameSpace(4)
        assert 0 in space
        assert 3 in space
        assert 4 not in space
        assert -1 not in space
        assert "2" not in space

    def test_len(self):
        assert len(NameSpace(7)) == 7

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            NameSpace(0)

    def test_sample_uniform_over_free_names(self, rng):
        space = NameSpace(4)
        draws = [space.sample(rng, exclude=[0, 2]) for _ in range(200)]
        assert set(draws) == {1, 3}
        ones = draws.count(1)
        assert 60 <= ones <= 140  # roughly balanced

    def test_sample_whole_space(self, rng):
        space = NameSpace(3)
        draws = {space.sample(rng) for _ in range(100)}
        assert draws == {0, 1, 2}

    def test_exhausted_space_raises(self, rng):
        space = NameSpace(2)
        with pytest.raises(ConfigurationError):
            space.sample(rng, exclude=[0, 1])

    def test_exclusions_outside_space_ignored(self, rng):
        space = NameSpace(2)
        name = space.sample(rng, exclude=[5, 7, 0])
        assert name == 1


class TestRecommendedSize:
    def test_delta_squared(self):
        assert recommended_size(10) == 100

    def test_exponent_one(self):
        assert recommended_size(10, exponent=1) == 12  # delta + 2 floor

    def test_small_delta_floor(self):
        assert recommended_size(0) == 2
        assert recommended_size(1) >= 3

    def test_rejects_negative_delta(self):
        with pytest.raises(ConfigurationError):
            recommended_size(-1)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            recommended_size(5, exponent=0)
