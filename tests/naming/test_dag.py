"""Tests for DAG orientation, height, and the Theorem 1 bound."""

import pytest

from repro.naming.dag import (
    dag_height,
    orient_by_key,
    roots,
    theorem1_height_bound,
)
from repro.naming.namespace import NameSpace, recommended_size
from repro.naming.renaming import PoliteRenaming
from repro.graph.generators import line_topology, ring_topology, \
    uniform_topology
from repro.util.errors import TopologyError


class TestOrientByKey:
    def test_edges_point_from_larger_to_smaller(self):
        graph = line_topology(3).graph
        successors = orient_by_key(graph, {0: 5, 1: 3, 2: 9})
        assert successors[0] == {1}
        assert successors[2] == {1}
        assert successors[1] == set()

    def test_equal_neighbor_keys_raise(self):
        graph = line_topology(2).graph
        with pytest.raises(TopologyError):
            orient_by_key(graph, {0: 1, 1: 1})

    def test_equal_distant_keys_allowed(self):
        graph = line_topology(3).graph
        successors = orient_by_key(graph, {0: 1, 1: 2, 2: 1})
        assert successors[1] == {0, 2}


class TestDagHeight:
    def test_monotone_path(self):
        graph = line_topology(4).graph
        assert dag_height(graph, {0: 0, 1: 1, 2: 2, 3: 3}) == 3

    def test_alternating_path(self):
        graph = line_topology(4).graph
        assert dag_height(graph, {0: 0, 1: 1, 2: 0, 3: 1}) == 1

    def test_empty_graph(self):
        from repro.graph.graph import Graph
        assert dag_height(Graph(), {}) == 0

    def test_single_node(self):
        from repro.graph.graph import Graph
        assert dag_height(Graph(nodes=[1]), {1: 0}) == 0

    def test_ring_with_distinct_keys(self):
        graph = ring_topology(4).graph
        # Keys 0,1,2,3 around the ring: longest decreasing chain 3-2-1-0.
        assert dag_height(graph, {0: 0, 1: 1, 2: 2, 3: 3}) == 3

    def test_tuple_keys_supported(self):
        graph = line_topology(3).graph
        keys = {0: (1, 0), 1: (1, 5), 2: (2, 0)}
        assert dag_height(graph, keys) == 2


class TestTheorem1:
    def test_bound_formula(self):
        assert theorem1_height_bound(16) == 17

    def test_renamed_graph_respects_bound(self, rng):
        # Theorem 1: the renaming DAG's height is at most |gamma| + 1.
        for seed in range(4):
            topo = uniform_topology(60, 0.22, rng=seed)
            size = recommended_size(topo.graph.max_degree())
            result = PoliteRenaming(namespace=NameSpace(size)).run(
                topo.graph, rng=rng, tie_ids=topo.ids)
            height = dag_height(topo.graph, result.ids)
            assert height <= theorem1_height_bound(size)

    def test_small_namespace_means_small_height(self, rng):
        # The paper's trade-off: |gamma| = delta + 2 caps the height hard.
        topo = uniform_topology(80, 0.25, rng=9)
        size = topo.graph.max_degree() + 2
        result = PoliteRenaming(namespace=NameSpace(size)).run(
            topo.graph, rng=rng, tie_ids=topo.ids)
        assert dag_height(topo.graph, result.ids) <= size + 1


class TestRoots:
    def test_roots_are_local_maxima(self):
        graph = line_topology(5).graph
        keys = {0: 1, 1: 5, 2: 3, 3: 4, 4: 0}
        assert roots(graph, keys) == {1, 3}

    def test_all_roots_in_singleton_graph(self):
        from repro.graph.graph import Graph
        assert roots(Graph(nodes=[1, 2]), {1: 0, 2: 0}) == {1, 2}
