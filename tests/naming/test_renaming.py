"""Tests for algorithm N1 and the polite renaming variant."""

import pytest

from repro.naming.namespace import NameSpace
from repro.naming.renaming import (
    PoliteRenaming,
    RandomizedRenaming,
    conflicting_edges,
    is_locally_unique,
    new_id,
)
from repro.graph.generators import complete_topology, line_topology, \
    uniform_topology
from repro.util.errors import ConfigurationError, ConvergenceError


class TestNewId:
    def test_keeps_non_conflicting_name(self, rng):
        space = NameSpace(10)
        assert new_id(3, [1, 2], space, rng) == 3

    def test_redraws_on_conflict(self, rng):
        space = NameSpace(10)
        name = new_id(3, [3, 4], space, rng)
        assert name not in {3, 4}

    def test_redraws_invalid_name(self, rng):
        space = NameSpace(10)
        assert new_id(None, [], space, rng) in space
        assert new_id(99, [], space, rng) in space


class TestConflicts:
    def test_detects_conflicting_edge(self):
        graph = line_topology(3).graph
        ids = {0: 1, 1: 1, 2: 2}
        assert conflicting_edges(graph, ids) == [(0, 1)]
        assert not is_locally_unique(graph, ids)

    def test_distant_duplicates_allowed(self):
        graph = line_topology(3).graph
        ids = {0: 1, 1: 2, 2: 1}
        assert is_locally_unique(graph, ids)


class TestRandomizedRenaming:
    def test_stabilizes_on_random_graph(self, rng):
        topo = uniform_topology(60, 0.2, rng=3)
        result = RandomizedRenaming().run(topo.graph, rng=rng)
        assert result.stable
        assert is_locally_unique(topo.graph, result.ids)

    def test_stabilizes_from_all_equal_names(self, rng):
        topo = complete_topology(6)
        initial = {node: 0 for node in topo.graph}
        result = RandomizedRenaming(namespace=NameSpace(100)).run(
            topo.graph, rng=rng, initial_ids=initial)
        assert is_locally_unique(topo.graph, result.ids)
        assert result.redraw_rounds >= 1

    def test_names_stay_in_namespace(self, rng):
        topo = uniform_topology(40, 0.25, rng=5)
        space = NameSpace(
            max(topo.graph.max_degree() ** 2, topo.graph.max_degree() + 2))
        result = RandomizedRenaming(namespace=space).run(topo.graph, rng=rng)
        assert all(name in space for name in result.ids.values())

    def test_history_recorded_when_asked(self, rng):
        topo = line_topology(4)
        renamer = RandomizedRenaming(keep_history=True)
        result = renamer.run(topo.graph, rng=rng)
        assert len(result.history) == result.rounds

    def test_initial_ids_must_cover(self, rng):
        topo = line_topology(3)
        with pytest.raises(ConfigurationError):
            RandomizedRenaming().run(topo.graph, rng=rng, initial_ids={0: 1})

    def test_convergence_budget_enforced(self, rng):
        # Namespace of exactly delta+1 on a complete graph: legal but slow;
        # a budget of 1 round cannot possibly resolve an all-zero start.
        topo = complete_topology(4)
        initial = {node: 0 for node in topo.graph}
        renamer = RandomizedRenaming(namespace=NameSpace(5), max_rounds=1)
        with pytest.raises(ConvergenceError):
            renamer.run(topo.graph, rng=rng, initial_ids=initial)


class TestPoliteRenaming:
    def test_stabilizes_on_random_graph(self, rng):
        topo = uniform_topology(60, 0.2, rng=4)
        result = PoliteRenaming().run(topo.graph, rng=rng,
                                      tie_ids=topo.ids)
        assert is_locally_unique(topo.graph, result.ids)

    def test_larger_id_keeps_its_name(self, rng):
        # On a conflicting pair, the larger normal id must not re-draw.
        topo = line_topology(2)
        initial = {0: 7, 1: 7}
        result = PoliteRenaming(namespace=NameSpace(50)).run(
            topo.graph, rng=rng, initial_ids=initial)
        assert result.ids[1] == 7
        assert result.ids[0] != 7

    def test_no_conflict_means_one_round(self, rng):
        topo = line_topology(3)
        initial = {0: 1, 1: 2, 2: 3}
        result = PoliteRenaming(namespace=NameSpace(50)).run(
            topo.graph, rng=rng, initial_ids=initial)
        assert result.rounds == 1
        assert result.redraw_rounds == 0
        assert result.ids == initial

    def test_typical_build_takes_about_two_rounds(self, rng):
        # The Table 3 regime: a dense random deployment stabilizes in ~2
        # rounds with the delta^2 namespace.
        topo = uniform_topology(300, 0.07, rng=11)
        result = PoliteRenaming().run(topo.graph, rng=rng, tie_ids=topo.ids)
        assert result.rounds <= 4

    def test_incremental_repair_keeps_most_names(self, rng):
        topo = uniform_topology(80, 0.2, rng=6)
        first = PoliteRenaming().run(topo.graph, rng=rng, tie_ids=topo.ids)
        # Corrupt two names, re-run seeded with the rest.
        corrupted = dict(first.ids)
        nodes = sorted(topo.graph.nodes)[:2]
        for node in nodes:
            corrupted[node] = 0
        second = PoliteRenaming().run(topo.graph, rng=rng,
                                      initial_ids=corrupted,
                                      tie_ids=topo.ids)
        unchanged = sum(second.ids[n] == corrupted[n] for n in topo.graph)
        assert unchanged >= len(topo.graph) - 4
