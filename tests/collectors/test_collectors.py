"""Unit tests for the collector pipeline and each built-in collector."""

import math
import pickle

import pytest

from repro.collectors import (
    REGISTRY,
    CollectorProxy,
    DataCollector,
    HeadLoadCollector,
    LatencyCollector,
    LinkLoadCollector,
    StreamingQuantile,
    StretchCollector,
)
from repro.util.errors import ConfigurationError
from repro.workload.generators import READ, WRITE, Request
from repro.workload.serve import ServedRequest


def served(route, head_path=None, flat_hops=None, op=READ):
    request = Request(time=0.0, source=route[0] if route else 0,
                      destination=route[-1] if route else 0, op=op)
    if route is None:
        return ServedRequest(request=request, route=None, head_path=None,
                             hops=None)
    return ServedRequest(request=request, route=route,
                         head_path=head_path or (route[0],),
                         hops=len(route) - 1, flat_hops=flat_hops)


class TestRegistry:
    def test_builtin_collectors_registered(self):
        assert {"latency", "link_load", "head_load", "stretch"} <= \
            set(REGISTRY)
        assert REGISTRY["latency"] is LatencyCollector

    def test_base_protocol_is_abstract(self):
        collector = DataCollector()
        with pytest.raises(NotImplementedError):
            collector.process(None)
        with pytest.raises(NotImplementedError):
            collector.results()


class TestCollectorProxy:
    def test_fan_out_and_nested_results(self):
        proxy = CollectorProxy([LatencyCollector(), LinkLoadCollector()])
        proxy.process(served([1, 2, 3]))
        results = proxy.results()
        assert results["latency"]["served"] == 1
        assert results["link_load"]["traversals"] == 2
        assert proxy["latency"].reads == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            CollectorProxy([LatencyCollector(), LatencyCollector()])

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            CollectorProxy([])["nope"]

    def test_merge_requires_matching_sets(self):
        ours = CollectorProxy([LatencyCollector()])
        theirs = CollectorProxy([LinkLoadCollector()])
        with pytest.raises(ConfigurationError):
            ours.merge(theirs)

    def test_merge_matches_by_name(self):
        ours = CollectorProxy([LatencyCollector(), LinkLoadCollector()])
        theirs = CollectorProxy([LinkLoadCollector(), LatencyCollector()])
        ours.process(served([1, 2]))
        theirs.process(served([2, 3, 4]))
        merged = ours.merge(theirs).results()
        assert merged["latency"]["served"] == 2
        assert merged["link_load"]["traversals"] == 3

    def test_cross_type_merge_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyCollector().merge(LinkLoadCollector())

    def test_proxy_is_picklable(self):
        # Chunk collectors travel back from worker processes.
        proxy = CollectorProxy([LatencyCollector(), StretchCollector()])
        proxy.process(served([1, 2, 3], flat_hops=2))
        clone = pickle.loads(pickle.dumps(proxy))
        assert clone.results() == proxy.results()


class TestLatencyCollector:
    def test_counts_and_percentiles(self):
        collector = LatencyCollector()
        for route in ([1, 2], [1, 2, 3], [1, 2, 3, 4], None):
            collector.process(served(route))
        collector.process(served([5, 6], op=WRITE))
        results = collector.results()
        assert results["requests"] == 5
        assert results["served"] == 4
        assert results["unroutable"] == 1
        assert results["reads"] == 3 and results["writes"] == 1
        assert results["p50"] == 1.0 and results["max"] == 3.0

    def test_merge_adds_counts(self):
        ours, theirs = LatencyCollector(), LatencyCollector()
        ours.process(served([1, 2]))
        theirs.process(served(None))
        assert ours.merge(theirs).results()["requests"] == 2


class TestLinkLoadCollector:
    def test_canonicalizes_direction(self):
        collector = LinkLoadCollector()
        collector.process(served([1, 2]))
        collector.process(served([2, 1]))
        results = collector.results()
        assert results["links_used"] == 1
        assert results["traversals"] == 2 and results["max"] == 2

    def test_empty_results_are_nan(self):
        results = LinkLoadCollector().results()
        assert results["links_used"] == 0
        assert math.isnan(results["mean"])


class TestHeadLoadCollector:
    def test_idle_heads_count_in_balance(self):
        collector = HeadLoadCollector(heads=("a", "b", "c", "d"))
        for _ in range(4):
            collector.process(served([1, 2], head_path=("a",)))
        results = collector.results()
        assert results["heads"] == 4 and results["handled"] == 4
        assert results["mean"] == 1.0 and results["max"] == 4
        assert results["imbalance"] == 4.0
        assert results["jain"] == pytest.approx(0.25)  # 1/n: one hot head

    def test_balanced_load_has_jain_one(self):
        collector = HeadLoadCollector(heads=("a", "b"))
        collector.process(served([1, 2], head_path=("a",)))
        collector.process(served([3, 4], head_path=("b",)))
        assert collector.results()["jain"] == pytest.approx(1.0)

    def test_merge_unions_head_sets(self):
        ours = HeadLoadCollector(heads=("a",))
        theirs = HeadLoadCollector(heads=("b",))
        theirs.process(served([1, 2], head_path=("b",)))
        results = ours.merge(theirs).results()
        assert results["heads"] == 2 and results["handled"] == 1


class TestStretchCollector:
    def test_ratios_from_pairs(self):
        collector = StretchCollector()
        collector.process(served([1, 2, 3], flat_hops=2))  # stretch 1.0
        collector.process(served([1, 2, 3, 4], flat_hops=2))  # stretch 1.5
        collector.process(served([1], flat_hops=0))  # 0-hop pair -> 1.0
        results = collector.results()
        assert results["sampled"] == 3
        assert results["max"] == 1.5
        assert results["mean"] == pytest.approx((1.0 + 1.5 + 1.0) / 3)

    def test_unsampled_and_unroutable_skipped(self):
        collector = StretchCollector()
        collector.process(served([1, 2]))  # flat_hops None: not sampled
        collector.process(served(None))
        assert collector.results()["sampled"] == 0

    def test_merge_adds_pair_counts(self):
        ours, theirs = StretchCollector(), StretchCollector()
        ours.process(served([1, 2, 3], flat_hops=2))
        theirs.process(served([1, 2, 3], flat_hops=2))
        merged = ours.merge(theirs)
        assert merged.pairs == {(2, 2): 2}


class TestStreamingQuantile:
    def test_exact_regime_matches_nearest_rank(self):
        summary = StreamingQuantile()
        for value in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            summary.observe(value)
        assert summary.percentile(50) == 5.0
        assert summary.percentile(99) == 10.0
        assert summary.mean == pytest.approx(5.5)
        assert not summary.binned

    def test_weighted_observe(self):
        summary = StreamingQuantile()
        summary.observe(3.0, count=99)
        summary.observe(100.0, count=1)
        assert summary.percentile(50) == 3.0
        assert summary.count == 100

    def test_collapse_beyond_cap_bounds_error(self):
        summary = StreamingQuantile(lo=0.0, hi=100.0, bins=1000, exact_cap=8)
        values = [i * 0.37 for i in range(50)]
        for value in values:
            summary.observe(value)
        assert summary.binned
        exact = sorted(values)[24]  # nearest-rank p50 over 50 samples
        assert abs(summary.percentile(50) - exact) <= summary.width
        assert summary.min == 0.0 and summary.max == values[-1]

    def test_merge_collapses_to_common_regime(self):
        exact = StreamingQuantile(lo=0.0, hi=10.0, bins=100, exact_cap=4)
        binned = StreamingQuantile(lo=0.0, hi=10.0, bins=100, exact_cap=4)
        for value in (1.0, 2.0):
            exact.observe(value)
        for value in (1.0, 3.0, 5.0, 7.0, 9.0):
            binned.observe(value)
        assert binned.binned and not exact.binned
        merged = exact.merge(binned)
        assert merged.binned
        assert merged.count == 7

    def test_parameter_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingQuantile(bins=10).merge(StreamingQuantile(bins=20))
        with pytest.raises(ConfigurationError):
            StreamingQuantile().merge(LatencyCollector())

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingQuantile(lo=5.0, hi=5.0)
        with pytest.raises(ConfigurationError):
            StreamingQuantile(bins=0)

    def test_empty_summary_is_nan(self):
        results = StreamingQuantile().results()
        assert results["count"] == 0
        assert math.isnan(results["p50"]) and math.isnan(results["mean"])
