"""Tests for convergence/closure measurement."""

import pytest

from repro.graph.generators import line_topology, uniform_topology
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.stabilization.faults import garbage_shared
from repro.stabilization.monitor import (
    StabilizationReport,
    recovery_time,
    steps_to_legitimacy,
    verify_closure,
)
from repro.stabilization.predicates import make_stack_predicate


def fresh_sim(seed=0):
    topo = uniform_topology(30, 0.3, rng=seed)
    return StepSimulator(topo, standard_stack(topology=topo), rng=seed), topo


class TestStepsToLegitimacy:
    def test_converges_and_reports(self):
        sim, _ = fresh_sim()
        report = steps_to_legitimacy(sim, make_stack_predicate(), 200)
        assert report.converged
        assert 1 <= report.steps <= 200

    def test_budget_exhaustion_reported_not_raised(self):
        sim, _ = fresh_sim()
        report = steps_to_legitimacy(sim, lambda s: False, 5)
        assert not report.converged
        assert report.steps == 5

    def test_report_str(self):
        report = StabilizationReport(steps=4, converged=True, budget=10)
        assert "converged in 4/10 steps" in str(report)
        report = StabilizationReport(steps=10, converged=False, budget=10)
        assert "DID NOT CONVERGE" in str(report)

    def test_measures_relative_to_current_time(self):
        sim, _ = fresh_sim()
        predicate = make_stack_predicate()
        steps_to_legitimacy(sim, predicate, 200)
        # Already legitimate: measuring again takes a single settle step.
        report = steps_to_legitimacy(sim, predicate, 50)
        assert report.steps <= 2


class TestVerifyClosure:
    def test_closure_holds_on_ideal_channel(self):
        sim, _ = fresh_sim()
        predicate = make_stack_predicate()
        steps_to_legitimacy(sim, predicate, 200)
        assert verify_closure(sim, predicate, 10) == 10

    def test_requires_legitimate_start(self):
        sim, _ = fresh_sim()
        with pytest.raises(AssertionError):
            verify_closure(sim, lambda s: False, 5)

    def test_detects_violation(self):
        topo = line_topology(3)
        sim = StepSimulator(topo, standard_stack(use_dag=False), rng=0)
        sim.run(10)
        flag = {"trip": False}

        def predicate(s):
            return not flag["trip"]

        # Predicate flips mid-check: closure must report the violation.
        original_step = sim.step

        def tripping_step():
            flag["trip"] = True
            return original_step()

        sim.step = tripping_step
        with pytest.raises(AssertionError):
            verify_closure(sim, predicate, 5)


class TestRecoveryTime:
    def test_recovers_after_garbage(self):
        sim, _ = fresh_sim(seed=2)
        predicate = make_stack_predicate()
        steps_to_legitimacy(sim, predicate, 200)
        report = recovery_time(sim, garbage_shared, predicate, 200)
        assert report.converged

    def test_scoped_fault(self):
        sim, topo = fresh_sim(seed=3)
        predicate = make_stack_predicate()
        steps_to_legitimacy(sim, predicate, 200)
        target = [next(iter(topo.graph))]
        report = recovery_time(sim, garbage_shared, predicate, 200,
                               nodes=target)
        assert report.converged
