"""Tests for the fault injectors."""

from fractions import Fraction

import numpy as np
import pytest

from repro.runtime.node import NodeRuntime
from repro.stabilization.faults import (
    clear_caches,
    clear_shared,
    duplicate_dag_ids,
    fabricate_caches,
    garbage_shared,
    random_subset,
    total_corruption,
)


@pytest.fixture
def runtime():
    node = NodeRuntime(node_id=3)
    node.shared.update(dag_id=7, density=Fraction(3, 2), head=5, parent=4,
                       neighbors=frozenset({1, 2}))
    from repro.runtime.frames import Frame
    node.ingest(Frame(sender=1, payload={"dag_id": 1}), now=1)
    return node


class TestInjectors:
    def test_clear_caches(self, runtime, rng):
        clear_caches(runtime, rng)
        assert runtime.known_neighbors() == set()

    def test_clear_shared(self, runtime, rng):
        clear_shared(runtime, rng)
        assert all(value is None for value in runtime.shared.values())

    def test_duplicate_dag_ids(self, runtime, rng):
        duplicate_dag_ids(runtime, rng)
        assert runtime.shared["dag_id"] == 0

    def test_garbage_shared_is_type_correct(self, runtime, rng):
        garbage_shared(runtime, rng)
        assert isinstance(runtime.shared["dag_id"], int)
        assert isinstance(runtime.shared["density"], Fraction)
        assert runtime.shared["parent"] == 3

    def test_garbage_only_touches_known_fields(self, rng):
        node = NodeRuntime(node_id=1)
        node.shared["custom"] = "keep"
        garbage_shared(node, rng)
        assert node.shared["custom"] == "keep"

    def test_fabricate_caches(self, runtime, rng):
        mutate = fabricate_caches(["ghost1", "ghost2"])
        mutate(runtime, rng)
        assert {"ghost1", "ghost2"} <= runtime.known_neighbors()
        # Ghosts are born maximally stale and die at the next expiry.
        runtime.expire_caches(now=5)
        assert "ghost1" not in runtime.known_neighbors()

    def test_total_corruption(self, runtime, rng):
        total_corruption(runtime, rng)
        assert runtime.known_neighbors() == set()
        assert isinstance(runtime.shared["dag_id"], int)


class TestRandomSubset:
    def test_respects_fraction(self):
        rng = np.random.default_rng(0)
        picked = random_subset(range(100), 0.25, rng)
        assert len(picked) == 25

    def test_at_least_one(self):
        rng = np.random.default_rng(0)
        assert len(random_subset(range(10), 0.0, rng)) == 1

    def test_no_duplicates(self):
        rng = np.random.default_rng(0)
        picked = random_subset(range(20), 0.5, rng)
        assert len(set(picked)) == len(picked)
