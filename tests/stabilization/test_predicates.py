"""Tests for the legitimacy predicates."""

import pytest

from repro.graph.generators import line_topology, uniform_topology
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.stabilization.predicates import (
    clustering_legitimate,
    densities_legitimate,
    make_stack_predicate,
    naming_legitimate,
    neighborhood_accurate,
    stack_legitimate,
    two_hop_accurate,
)


@pytest.fixture
def converged_sim(random50):
    sim = StepSimulator(random50, standard_stack(topology=random50), rng=3)
    sim.run(40)
    return sim


class TestLayerPredicates:
    def test_fresh_boot_is_illegitimate(self, random50):
        sim = StepSimulator(random50, standard_stack(topology=random50),
                            rng=3)
        assert not neighborhood_accurate(sim)
        assert not densities_legitimate(sim)
        assert not stack_legitimate(sim)

    def test_converged_state_is_legitimate(self, converged_sim):
        assert neighborhood_accurate(converged_sim)
        assert two_hop_accurate(converged_sim)
        assert naming_legitimate(converged_sim)
        assert densities_legitimate(converged_sim)
        assert clustering_legitimate(converged_sim)
        assert stack_legitimate(converged_sim)

    def test_neighborhood_detects_ghost_cache(self, converged_sim):
        from repro.runtime.node import CacheEntry
        node = next(iter(converged_sim.graph))
        converged_sim.runtime(node).caches["ghost"] = CacheEntry(
            payload={}, refreshed_at=converged_sim.now)
        assert not neighborhood_accurate(converged_sim)

    def test_naming_detects_duplicate(self, converged_sim):
        graph = converged_sim.graph
        u, v = next(iter(graph.edges))
        converged_sim.runtime(u).shared["dag_id"] = \
            converged_sim.runtime(v).shared["dag_id"]
        assert not naming_legitimate(converged_sim)

    def test_naming_detects_missing_name(self, converged_sim):
        node = next(iter(converged_sim.graph))
        converged_sim.runtime(node).shared["dag_id"] = None
        assert not naming_legitimate(converged_sim)

    def test_density_detects_corruption(self, converged_sim):
        node = next(iter(converged_sim.graph))
        converged_sim.runtime(node).shared["density"] = 99
        assert not densities_legitimate(converged_sim)

    def test_clustering_detects_wrong_head(self, converged_sim):
        node = next(iter(converged_sim.graph))
        converged_sim.runtime(node).shared["head"] = "nonsense"
        assert not clustering_legitimate(converged_sim)


class TestIncumbentLegitimacy:
    def test_incumbent_fixpoint_is_legitimate(self):
        topo = uniform_topology(40, 0.25, rng=8)
        sim = StepSimulator(topo,
                            standard_stack(topology=topo, order="incumbent"),
                            rng=4)
        sim.run(40)
        assert clustering_legitimate(sim, order="incumbent")

    def test_no_dag_stack_legitimate(self):
        topo = line_topology(5)
        sim = StepSimulator(topo, standard_stack(use_dag=False), rng=0)
        sim.run(15)
        assert stack_legitimate(sim, use_dag=False)


class TestMakeStackPredicate:
    def test_binds_configuration(self, converged_sim):
        predicate = make_stack_predicate()
        assert predicate(converged_sim)
        assert "basic" in predicate.__name__

    def test_callable_signature(self, converged_sim):
        predicate = make_stack_predicate(use_dag=True, fusion=False)
        assert predicate(converged_sim) is True
